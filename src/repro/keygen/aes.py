"""AES-128 from scratch (FIPS 197).

Used in two places:

* as the symmetric "key generation" primitive of the prior-work AES-based
  RBC engine (Table 7's AES-128 row): the candidate public response is the
  AES encryption of a fixed plaintext under the seed-derived key;
* as the cipher behind the CA's encrypted PUF-image database (CTR mode).

The S-box is derived programmatically from the GF(2^8) inverse plus the
affine map rather than pasted as constants, and validated against the
FIPS 197 appendix vectors in the tests.
"""

from __future__ import annotations

__all__ = ["AES128", "aes128_encrypt_block", "aes128_decrypt_block", "aes128_ctr_keystream"]


def _gf_mul(a: int, b: int) -> int:
    """Multiplication in GF(2^8) modulo the AES polynomial x^8+x^4+x^3+x+1."""
    result = 0
    for _ in range(8):
        if b & 1:
            result ^= a
        high = a & 0x80
        a = (a << 1) & 0xFF
        if high:
            a ^= 0x1B
        b >>= 1
    return result


def _build_sbox() -> tuple[list[int], list[int]]:
    # GF(2^8) inverse via exponentiation tables over generator 3.
    exp = [0] * 255
    log = [0] * 256
    value = 1
    for i in range(255):
        exp[i] = value
        log[value] = i
        value = _gf_mul(value, 3)
    sbox = [0] * 256
    for x in range(256):
        inv = 0 if x == 0 else exp[(255 - log[x]) % 255]
        # Affine transformation.
        y = inv
        result = 0x63
        for shift in (0, 1, 2, 3, 4):
            result ^= ((y << shift) | (y >> (8 - shift))) & 0xFF
        sbox[x] = result
    inv_sbox = [0] * 256
    for x, s in enumerate(sbox):
        inv_sbox[s] = x
    return sbox, inv_sbox


_SBOX, _INV_SBOX = _build_sbox()
_RCON = (0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36)


def _build_enc_tables() -> tuple[list[int], list[int], list[int], list[int]]:
    """Fused SubBytes+MixColumns lookup tables (the classic T-tables).

    ``T_r[x]`` is the 32-bit column contribution of the row-``r`` input
    byte ``x`` after S-box substitution, so one encryption round reduces
    to sixteen table lookups and a handful of XORs. Derived from the same
    programmatic S-box as the reference round functions below.
    """
    t0, t1, t2, t3 = [], [], [], []
    for x in range(256):
        s = _SBOX[x]
        s2 = _gf_mul(s, 2)
        s3 = s2 ^ s
        t0.append((s2 << 24) | (s << 16) | (s << 8) | s3)
        t1.append((s3 << 24) | (s2 << 16) | (s << 8) | s)
        t2.append((s << 24) | (s3 << 16) | (s2 << 8) | s)
        t3.append((s << 24) | (s << 16) | (s3 << 8) | s2)
    return t0, t1, t2, t3


_T0, _T1, _T2, _T3 = _build_enc_tables()


def _expand_key(key: bytes) -> list[list[int]]:
    """AES-128 key schedule: 11 round keys of 16 bytes each."""
    if len(key) != 16:
        raise ValueError("AES-128 key must be 16 bytes")
    words = [list(key[4 * i : 4 * i + 4]) for i in range(4)]
    for i in range(4, 44):
        temp = list(words[i - 1])
        if i % 4 == 0:
            temp = temp[1:] + temp[:1]
            temp = [_SBOX[b] for b in temp]
            temp[0] ^= _RCON[i // 4 - 1]
        words.append([a ^ b for a, b in zip(words[i - 4], temp)])
    return [sum(words[4 * r : 4 * r + 4], []) for r in range(11)]


def _sub_bytes(state: list[int]) -> list[int]:
    return [_SBOX[b] for b in state]


def _inv_sub_bytes(state: list[int]) -> list[int]:
    return [_INV_SBOX[b] for b in state]


# State layout: state[r + 4*c] = byte at row r, column c (column-major,
# matching FIPS 197 where input byte i lands at row i%4, column i//4).


def _shift_rows(state: list[int]) -> list[int]:
    out = [0] * 16
    for r in range(4):
        for c in range(4):
            out[r + 4 * c] = state[r + 4 * ((c + r) % 4)]
    return out


def _inv_shift_rows(state: list[int]) -> list[int]:
    out = [0] * 16
    for r in range(4):
        for c in range(4):
            out[r + 4 * ((c + r) % 4)] = state[r + 4 * c]
    return out


def _mix_columns(state: list[int]) -> list[int]:
    out = [0] * 16
    for c in range(4):
        col = state[4 * c : 4 * c + 4]
        out[4 * c + 0] = _gf_mul(col[0], 2) ^ _gf_mul(col[1], 3) ^ col[2] ^ col[3]
        out[4 * c + 1] = col[0] ^ _gf_mul(col[1], 2) ^ _gf_mul(col[2], 3) ^ col[3]
        out[4 * c + 2] = col[0] ^ col[1] ^ _gf_mul(col[2], 2) ^ _gf_mul(col[3], 3)
        out[4 * c + 3] = _gf_mul(col[0], 3) ^ col[1] ^ col[2] ^ _gf_mul(col[3], 2)
    return out


def _inv_mix_columns(state: list[int]) -> list[int]:
    out = [0] * 16
    for c in range(4):
        col = state[4 * c : 4 * c + 4]
        out[4 * c + 0] = (_gf_mul(col[0], 14) ^ _gf_mul(col[1], 11)
                          ^ _gf_mul(col[2], 13) ^ _gf_mul(col[3], 9))
        out[4 * c + 1] = (_gf_mul(col[0], 9) ^ _gf_mul(col[1], 14)
                          ^ _gf_mul(col[2], 11) ^ _gf_mul(col[3], 13))
        out[4 * c + 2] = (_gf_mul(col[0], 13) ^ _gf_mul(col[1], 9)
                          ^ _gf_mul(col[2], 14) ^ _gf_mul(col[3], 11))
        out[4 * c + 3] = (_gf_mul(col[0], 11) ^ _gf_mul(col[1], 13)
                          ^ _gf_mul(col[2], 9) ^ _gf_mul(col[3], 14))
    return out


def _add_round_key(state: list[int], round_key: list[int]) -> list[int]:
    return [b ^ k for b, k in zip(state, round_key)]


class AES128:
    """AES-128 with a precomputed key schedule for repeated block ops."""

    block_size = 16
    key_size = 16

    def __init__(self, key: bytes):
        self._round_keys = _expand_key(key)
        # Round keys as big-endian column words for the T-table fast path.
        self._round_key_words = [
            tuple(
                int.from_bytes(bytes(rk[4 * c : 4 * c + 4]), "big")
                for c in range(4)
            )
            for rk in self._round_keys
        ]

    def encrypt_block(self, plaintext: bytes) -> bytes:
        """Encrypt one 16-byte block (T-table fast path).

        Equivalent to SubBytes/ShiftRows/MixColumns/AddRoundKey over the
        column-major state; ``_mix_columns`` et al. below remain as the
        readable reference (and serve the decryption direction).
        """
        if len(plaintext) != 16:
            raise ValueError("AES block must be 16 bytes")
        rk = self._round_key_words
        k = rk[0]
        s0 = int.from_bytes(plaintext[0:4], "big") ^ k[0]
        s1 = int.from_bytes(plaintext[4:8], "big") ^ k[1]
        s2 = int.from_bytes(plaintext[8:12], "big") ^ k[2]
        s3 = int.from_bytes(plaintext[12:16], "big") ^ k[3]
        for k in rk[1:10]:
            t0 = (_T0[s0 >> 24] ^ _T1[(s1 >> 16) & 0xFF]
                  ^ _T2[(s2 >> 8) & 0xFF] ^ _T3[s3 & 0xFF] ^ k[0])
            t1 = (_T0[s1 >> 24] ^ _T1[(s2 >> 16) & 0xFF]
                  ^ _T2[(s3 >> 8) & 0xFF] ^ _T3[s0 & 0xFF] ^ k[1])
            t2 = (_T0[s2 >> 24] ^ _T1[(s3 >> 16) & 0xFF]
                  ^ _T2[(s0 >> 8) & 0xFF] ^ _T3[s1 & 0xFF] ^ k[2])
            t3 = (_T0[s3 >> 24] ^ _T1[(s0 >> 16) & 0xFF]
                  ^ _T2[(s1 >> 8) & 0xFF] ^ _T3[s2 & 0xFF] ^ k[3])
            s0, s1, s2, s3 = t0, t1, t2, t3
        k = rk[10]
        sb = _SBOX
        o0 = ((sb[s0 >> 24] << 24) | (sb[(s1 >> 16) & 0xFF] << 16)
              | (sb[(s2 >> 8) & 0xFF] << 8) | sb[s3 & 0xFF]) ^ k[0]
        o1 = ((sb[s1 >> 24] << 24) | (sb[(s2 >> 16) & 0xFF] << 16)
              | (sb[(s3 >> 8) & 0xFF] << 8) | sb[s0 & 0xFF]) ^ k[1]
        o2 = ((sb[s2 >> 24] << 24) | (sb[(s3 >> 16) & 0xFF] << 16)
              | (sb[(s0 >> 8) & 0xFF] << 8) | sb[s1 & 0xFF]) ^ k[2]
        o3 = ((sb[s3 >> 24] << 24) | (sb[(s0 >> 16) & 0xFF] << 16)
              | (sb[(s1 >> 8) & 0xFF] << 8) | sb[s2 & 0xFF]) ^ k[3]
        return b"".join(o.to_bytes(4, "big") for o in (o0, o1, o2, o3))

    def decrypt_block(self, ciphertext: bytes) -> bytes:
        """Decrypt one 16-byte block."""
        if len(ciphertext) != 16:
            raise ValueError("AES block must be 16 bytes")
        state = _add_round_key(list(ciphertext), self._round_keys[10])
        state = _inv_shift_rows(state)
        state = _inv_sub_bytes(state)
        for round_index in range(9, 0, -1):
            state = _add_round_key(state, self._round_keys[round_index])
            state = _inv_mix_columns(state)
            state = _inv_shift_rows(state)
            state = _inv_sub_bytes(state)
        state = _add_round_key(state, self._round_keys[0])
        return bytes(state)

    def ctr_transform(self, data: bytes, nonce: bytes) -> bytes:
        """CTR-mode encryption/decryption (its own inverse)."""
        if len(nonce) != 8:
            raise ValueError("CTR nonce must be 8 bytes")
        out = bytearray()
        counter = 0
        for offset in range(0, len(data), 16):
            block = nonce + counter.to_bytes(8, "big")
            keystream = self.encrypt_block(block)
            chunk = data[offset : offset + 16]
            out.extend(b ^ k for b, k in zip(chunk, keystream))
            counter += 1
        return bytes(out)


def aes128_encrypt_block(key: bytes, plaintext: bytes) -> bytes:
    """One-shot AES-128 block encryption."""
    return AES128(key).encrypt_block(plaintext)


def aes128_decrypt_block(key: bytes, ciphertext: bytes) -> bytes:
    """One-shot AES-128 block decryption."""
    return AES128(key).decrypt_block(ciphertext)


def aes128_ctr_keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    """CTR keystream bytes for the encrypted PUF-image database."""
    return AES128(key).ctr_transform(b"\x00" * length, nonce)
