"""SPECK-128/128 block cipher, from scratch.

The lightweight NSA cipher evaluated by the prior-work symmetric RBC
engine (Wright et al. 2021). SPECK's tiny ARX round function made it the
cheapest keygen of that study; it anchors the inexpensive end of the
prior-work comparison here.
"""

from __future__ import annotations

__all__ = ["Speck128", "speck128_encrypt_block", "speck128_decrypt_block"]

_MASK64 = (1 << 64) - 1
_ROUNDS = 32


def _ror64(x: int, s: int) -> int:
    return ((x >> s) | (x << (64 - s))) & _MASK64


def _rol64(x: int, s: int) -> int:
    return ((x << s) | (x >> (64 - s))) & _MASK64


def _round(x: int, y: int, k: int) -> tuple[int, int]:
    x = (_ror64(x, 8) + y) & _MASK64
    x ^= k
    y = _rol64(y, 3) ^ x
    return x, y


def _unround(x: int, y: int, k: int) -> tuple[int, int]:
    y = _ror64(y ^ x, 3)
    x = _rol64(((x ^ k) - y) & _MASK64, 8)
    return x, y


class Speck128:
    """SPECK-128/128 with a precomputed round-key schedule."""

    block_size = 16
    key_size = 16

    def __init__(self, key: bytes):
        if len(key) != 16:
            raise ValueError("SPECK-128/128 key must be 16 bytes")
        # Key words: k[0] is the low word per the SPECK paper's convention
        # (key bytes written big-endian are (k1, k0)).
        k1 = int.from_bytes(key[0:8], "big")
        k0 = int.from_bytes(key[8:16], "big")
        self._round_keys = [0] * _ROUNDS
        a, b = k0, k1
        for i in range(_ROUNDS):
            self._round_keys[i] = a
            b, a = _round(b, a, i)

    def encrypt_block(self, plaintext: bytes) -> bytes:
        """Encrypt one 16-byte block."""
        if len(plaintext) != 16:
            raise ValueError("SPECK block must be 16 bytes")
        x = int.from_bytes(plaintext[0:8], "big")
        y = int.from_bytes(plaintext[8:16], "big")
        for k in self._round_keys:
            x, y = _round(x, y, k)
        return x.to_bytes(8, "big") + y.to_bytes(8, "big")

    def decrypt_block(self, ciphertext: bytes) -> bytes:
        """Decrypt one 16-byte block."""
        if len(ciphertext) != 16:
            raise ValueError("SPECK block must be 16 bytes")
        x = int.from_bytes(ciphertext[0:8], "big")
        y = int.from_bytes(ciphertext[8:16], "big")
        for k in reversed(self._round_keys):
            x, y = _unround(x, y, k)
        return x.to_bytes(8, "big") + y.to_bytes(8, "big")


def speck128_encrypt_block(key: bytes, plaintext: bytes) -> bytes:
    """One-shot SPECK-128/128 block encryption."""
    return Speck128(key).encrypt_block(plaintext)


def speck128_decrypt_block(key: bytes, ciphertext: bytes) -> bytes:
    """One-shot SPECK-128/128 block decryption."""
    return Speck128(key).decrypt_block(ciphertext)
