"""ChaCha20 stream cipher (RFC 8439), from scratch.

One of the symmetric primitives the prior-work RBC engine of Wright et
al. (2021) evaluated alongside AES and SPECK. Here it backs the ChaCha20
row of the prior-work comparison and doubles as a fast PRG inside the
toy LWE key generator.
"""

from __future__ import annotations

import struct

__all__ = ["chacha20_block", "chacha20_encrypt", "chacha20_keystream"]

_MASK32 = 0xFFFFFFFF
_CONSTANTS = (0x61707865, 0x3320646E, 0x79622D32, 0x6B206574)  # "expand 32-byte k"


def _rotl32(x: int, s: int) -> int:
    return ((x << s) | (x >> (32 - s))) & _MASK32


def _quarter_round(state: list[int], a: int, b: int, c: int, d: int) -> None:
    state[a] = (state[a] + state[b]) & _MASK32
    state[d] = _rotl32(state[d] ^ state[a], 16)
    state[c] = (state[c] + state[d]) & _MASK32
    state[b] = _rotl32(state[b] ^ state[c], 12)
    state[a] = (state[a] + state[b]) & _MASK32
    state[d] = _rotl32(state[d] ^ state[a], 8)
    state[c] = (state[c] + state[d]) & _MASK32
    state[b] = _rotl32(state[b] ^ state[c], 7)


def chacha20_block(key: bytes, counter: int, nonce: bytes) -> bytes:
    """One 64-byte ChaCha20 keystream block (RFC 8439 §2.3)."""
    if len(key) != 32:
        raise ValueError("ChaCha20 key must be 32 bytes")
    if len(nonce) != 12:
        raise ValueError("ChaCha20 nonce must be 12 bytes")
    state = list(_CONSTANTS)
    state += list(struct.unpack("<8I", key))
    state.append(counter & _MASK32)
    state += list(struct.unpack("<3I", nonce))
    working = list(state)
    for _ in range(10):
        # Column rounds.
        _quarter_round(working, 0, 4, 8, 12)
        _quarter_round(working, 1, 5, 9, 13)
        _quarter_round(working, 2, 6, 10, 14)
        _quarter_round(working, 3, 7, 11, 15)
        # Diagonal rounds.
        _quarter_round(working, 0, 5, 10, 15)
        _quarter_round(working, 1, 6, 11, 12)
        _quarter_round(working, 2, 7, 8, 13)
        _quarter_round(working, 3, 4, 9, 14)
    out = [(w + s) & _MASK32 for w, s in zip(working, state)]
    return struct.pack("<16I", *out)


def chacha20_keystream(key: bytes, nonce: bytes, length: int, counter: int = 1) -> bytes:
    """``length`` keystream bytes starting at block ``counter``."""
    out = bytearray()
    block_counter = counter
    while len(out) < length:
        out.extend(chacha20_block(key, block_counter, nonce))
        block_counter += 1
    return bytes(out[:length])


def chacha20_encrypt(key: bytes, nonce: bytes, data: bytes, counter: int = 1) -> bytes:
    """XOR ``data`` with the ChaCha20 keystream (its own inverse)."""
    stream = chacha20_keystream(key, nonce, len(data), counter)
    return bytes(a ^ b for a, b in zip(data, stream))
