"""Key-generation substrate.

The original (algorithm-aware) RBC protocol generates a *public key* for
every candidate seed, so the per-candidate cost is one key generation.
RBC-SALTED generates the public key exactly once, from the salted seed.
This package provides the cryptographic algorithms both variants draw on:

* :mod:`repro.keygen.aes` — AES-128 from scratch (FIPS 197), used by the
  original AES-based RBC engines and by the CA's encrypted PUF-image
  database.
* :mod:`repro.keygen.chacha20` — ChaCha20 (RFC 8439), a prior-work cipher.
* :mod:`repro.keygen.speck` — SPECK-128/128, a prior-work cipher.
* :mod:`repro.keygen.lwe` — a toy module-LWE key generator standing in
  for the SABER / CRYSTALS-Dilithium PQC schemes (documented substitution:
  same keygen-vs-hash cost regime, NOT a secure implementation).
* :mod:`repro.keygen.interface` — the uniform :class:`KeyGenerator`
  protocol the RBC engines consume.
"""

from repro.keygen.interface import KeyGenerator, get_keygen, available_keygens
from repro.keygen.aes import AES128, aes128_encrypt_block, aes128_ctr_keystream
from repro.keygen.chacha20 import chacha20_block, chacha20_encrypt
from repro.keygen.speck import speck128_encrypt_block, Speck128
from repro.keygen.lwe import ToyModuleLWE
from repro.keygen.batch_aes import aes128_encrypt_batch
from repro.keygen.batch_speck import speck128_encrypt_batch
from repro.keygen.batch_chacha20 import chacha20_block_batch

__all__ = [
    "KeyGenerator",
    "get_keygen",
    "available_keygens",
    "AES128",
    "aes128_encrypt_block",
    "aes128_ctr_keystream",
    "chacha20_block",
    "chacha20_encrypt",
    "speck128_encrypt_block",
    "Speck128",
    "ToyModuleLWE",
    "aes128_encrypt_batch",
    "speck128_encrypt_batch",
    "chacha20_block_batch",
]
