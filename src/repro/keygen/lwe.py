"""Toy module-LWE key generation — the PQC cost stand-in.

DOCUMENTED SUBSTITUTION (DESIGN.md §6): the paper's prior-work rows use
LightSABER and CRYSTALS-Dilithium3. Reimplementing either faithfully is
out of scope and unnecessary for the reproduction: what Table 7 measures
is the *cost regime* of lattice keygen (matrix expansion from a seed,
polynomial arithmetic over a module) versus one hash. This class performs
exactly that work — expand seed to a k×k matrix of degree-n polynomials,
sample a small secret, compute ``b = A·s + e`` with NTT-free schoolbook
convolution done via NumPy — with SABER/Dilithium-like dimensions, so its
keygen/hash cost ratio lands in the same regime.

It is NOT a secure PQC implementation (no CBD sampling rigor, no NTT, no
rejection sampling) and must never be used as one.
"""

from __future__ import annotations

import numpy as np

from repro.keygen.chacha20 import chacha20_keystream
from repro.hashes.sha3 import sha3_256

__all__ = ["ToyModuleLWE", "LWE_PRESETS"]

#: (module rank k, polynomial degree n, modulus q, noise bound eta)
LWE_PRESETS = {
    # LightSABER-like: rank 2, n=256, 13-bit modulus.
    "light": (2, 256, 8192, 5),
    # SABER-like: rank 3.
    "saber": (3, 256, 8192, 4),
    # Dilithium3-like: rank (6, 5) approximated with square rank 6 —
    # deliberately the most expensive preset, as Dilithium3 is in Table 7.
    "dilithium3": (6, 256, 8380417, 2),
}


class ToyModuleLWE:
    """Deterministic module-LWE-shaped key generation from a 32-byte seed."""

    def __init__(self, preset: str = "light"):
        if preset not in LWE_PRESETS:
            raise KeyError(f"unknown LWE preset {preset!r}; options: {sorted(LWE_PRESETS)}")
        self.preset = preset
        self.rank, self.degree, self.modulus, self.eta = LWE_PRESETS[preset]

    def _prg_uint32(self, seed: bytes, label: bytes, count: int) -> np.ndarray:
        """Deterministic uniform uint32 stream from (seed, label)."""
        key = sha3_256(seed + label)
        raw = chacha20_keystream(key, b"\x00" * 12, count * 4)
        return np.frombuffer(raw, dtype="<u4").astype(np.int64)

    def matrix_seed(self, seed: bytes) -> bytes:
        """ρ — the public seed the matrix A expands from (Kyber-style).

        Publishing ρ (inside the serialized public key) lets third
        parties re-expand A and encrypt to the key holder without ever
        seeing the PUF seed."""
        return sha3_256(seed + b"matrix-A-rho")

    def _expand_matrix(self, seed: bytes) -> np.ndarray:
        """Public matrix A for ``seed``: (k, k, n) uniform mod q."""
        return self.expand_matrix_from_rho(self.matrix_seed(seed))

    def expand_matrix_from_rho(self, rho: bytes) -> np.ndarray:
        """Expand A from the public matrix seed ρ."""
        k, n = self.rank, self.degree
        flat = self._prg_uint32(rho, b"matrix-A", k * k * n) % self.modulus
        return flat.reshape(k, k, n)

    def _sample_small(self, seed: bytes, label: bytes) -> np.ndarray:
        """Small vector (k, n): centered binomial-ish in [-eta, eta]."""
        k, n = self.rank, self.degree
        raw = self._prg_uint32(seed, label, k * n)
        return (raw % (2 * self.eta + 1)).reshape(k, n) - self.eta

    def _polymul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Negacyclic convolution in Z_q[x]/(x^n + 1) via full convolve."""
        n = self.degree
        full = np.convolve(a, b)
        folded = full[:n].copy()
        folded[: full.shape[0] - n] -= full[n:]
        return folded % self.modulus

    def keypair(self, seed: bytes) -> tuple[np.ndarray, np.ndarray]:
        """Derive ``(public b, secret s)`` deterministically from ``seed``."""
        if len(seed) != 32:
            raise ValueError("seed must be 32 bytes")
        a_matrix = self._expand_matrix(seed)
        secret = self._sample_small(seed, b"secret-s")
        error = self._sample_small(seed, b"error-e")
        k = self.rank
        public = np.zeros((k, self.degree), dtype=np.int64)
        for i in range(k):
            acc = np.zeros(self.degree, dtype=np.int64)
            for j in range(k):
                acc = (acc + self._polymul(a_matrix[i, j], secret[j])) % self.modulus
            public[i] = (acc + error[i]) % self.modulus
        return public, secret

    def public_key(self, seed: bytes) -> bytes:
        """Serialized public key ``b`` for the RBC response comparison."""
        public, _secret = self.keypair(seed)
        return public.astype("<u4").tobytes()

    # -- Regev-style encryption, so issued keys are actually usable -----

    def export_public(self, seed: bytes) -> bytes:
        """Serialized third-party-usable public key: ρ ‖ b."""
        public, _secret = self.keypair(seed)
        return self.matrix_seed(seed) + public.astype("<u4").tobytes()

    def import_public(self, raw: bytes) -> tuple[bytes, np.ndarray]:
        """Parse :meth:`export_public` output into (ρ, b)."""
        expected = 32 + self.rank * self.degree * 4
        if len(raw) != expected:
            raise ValueError(
                f"public key must be {expected} bytes for preset {self.preset!r}"
            )
        rho = raw[:32]
        b = np.frombuffer(raw[32:], dtype="<u4").astype(np.int64)
        return rho, b.reshape(self.rank, self.degree)

    def encrypt_to_public(
        self,
        public_key: bytes,
        message_bits: np.ndarray,
        enc_randomness: bytes,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Third-party encryption: only the exported public key needed."""
        rho, public = self.import_public(public_key)
        a_matrix = self.expand_matrix_from_rho(rho)
        return self._encrypt_core(a_matrix, public, message_bits, enc_randomness)

    def encrypt(
        self, seed: bytes, message_bits: np.ndarray, enc_randomness: bytes
    ) -> tuple[np.ndarray, np.ndarray]:
        """Encrypt ``degree`` message bits to the public key of ``seed``.

        Deterministic given ``enc_randomness`` (32 bytes). Returns the
        ciphertext ``(u, v)`` with ``u`` of shape ``(k, n)`` and ``v`` of
        shape ``(n,)`` — classic module-Regev:
        ``u = Aᵀ r + e₁``, ``v = b·r + e₂ + ⌊q/2⌋·m``.
        """
        a_matrix = self._expand_matrix(seed)
        public, _secret = self.keypair(seed)
        return self._encrypt_core(a_matrix, public, message_bits, enc_randomness)

    def _encrypt_core(
        self,
        a_matrix: np.ndarray,
        public: np.ndarray,
        message_bits: np.ndarray,
        enc_randomness: bytes,
    ) -> tuple[np.ndarray, np.ndarray]:
        message_bits = np.asarray(message_bits)
        if message_bits.shape != (self.degree,):
            raise ValueError(f"message must be {self.degree} bits")
        if len(enc_randomness) != 32:
            raise ValueError("encryption randomness must be 32 bytes")
        r = self._sample_small(enc_randomness, b"enc-r")
        e1 = self._sample_small(enc_randomness, b"enc-e1")
        e2 = self._sample_small(enc_randomness, b"enc-e2")[0]
        k = self.rank
        u = np.zeros((k, self.degree), dtype=np.int64)
        for j in range(k):
            acc = np.zeros(self.degree, dtype=np.int64)
            for i in range(k):
                # A transpose: entry (j, i) of Aᵀ is A[i, j].
                acc = (acc + self._polymul(a_matrix[i, j], r[i])) % self.modulus
            u[j] = (acc + e1[j]) % self.modulus
        v = np.zeros(self.degree, dtype=np.int64)
        for i in range(k):
            v = (v + self._polymul(public[i], r[i])) % self.modulus
        encoded = (message_bits.astype(np.int64) * (self.modulus // 2)) % self.modulus
        v = (v + e2 + encoded) % self.modulus
        return u, v

    def decrypt(self, seed: bytes, ciphertext: tuple[np.ndarray, np.ndarray]) -> np.ndarray:
        """Recover the message bits with the secret derived from ``seed``."""
        u, v = ciphertext
        _public, secret = self.keypair(seed)
        acc = np.zeros(self.degree, dtype=np.int64)
        for i in range(self.rank):
            acc = (acc + self._polymul(u[i], secret[i])) % self.modulus
        noisy = (v - acc) % self.modulus
        # Bits decode to whichever of {0, q/2} is closer (mod q).
        quarter = self.modulus // 4
        return ((noisy > quarter) & (noisy < self.modulus - quarter)).astype(np.uint8)
