"""NumPy-vectorized ChaCha20 block function over batches of distinct keys.

Each lane computes one 64-byte keystream block under its own 32-byte key
(fixed counter/nonce) — the ChaCha20 variant of the key-agile original
RBC search evaluated by Wright et al. (2021).
"""

from __future__ import annotations

import numpy as np

__all__ = ["chacha20_block_batch"]

_U32 = np.uint32
_CONSTANTS = (0x61707865, 0x3320646E, 0x79622D32, 0x6B206574)


def _rotl(x: np.ndarray, s: int) -> np.ndarray:
    return (x << _U32(s)) | (x >> _U32(32 - s))


def _quarter(state: list[np.ndarray], a: int, b: int, c: int, d: int) -> None:
    state[a] = state[a] + state[b]
    state[d] = _rotl(state[d] ^ state[a], 16)
    state[c] = state[c] + state[d]
    state[b] = _rotl(state[b] ^ state[c], 12)
    state[a] = state[a] + state[b]
    state[d] = _rotl(state[d] ^ state[a], 8)
    state[c] = state[c] + state[d]
    state[b] = _rotl(state[b] ^ state[c], 7)


def chacha20_block_batch(
    keys: np.ndarray, counter: int = 0, nonce: bytes = b"\x00" * 12
) -> np.ndarray:
    """One keystream block per key: ``(N, 32)`` uint8 keys -> ``(N, 64)`` uint8.

    Row i equals ``chacha20_block(keys[i], counter, nonce)``.
    """
    keys = np.asarray(keys, dtype=np.uint8)
    if keys.ndim != 2 or keys.shape[1] != 32:
        raise ValueError("expected (N, 32) uint8 keys")
    if len(nonce) != 12:
        raise ValueError("nonce must be 12 bytes")
    n = keys.shape[0]
    key_words = np.ascontiguousarray(keys).view("<u4")  # (N, 8)
    nonce_words = np.frombuffer(nonce, dtype="<u4")

    state: list[np.ndarray] = [
        np.full(n, c, dtype=_U32) for c in _CONSTANTS
    ]
    state += [key_words[:, i].copy() for i in range(8)]
    state.append(np.full(n, counter & 0xFFFFFFFF, dtype=_U32))
    state += [np.full(n, w, dtype=_U32) for w in nonce_words]

    working = [s.copy() for s in state]
    for _ in range(10):
        _quarter(working, 0, 4, 8, 12)
        _quarter(working, 1, 5, 9, 13)
        _quarter(working, 2, 6, 10, 14)
        _quarter(working, 3, 7, 11, 15)
        _quarter(working, 0, 5, 10, 15)
        _quarter(working, 1, 6, 11, 12)
        _quarter(working, 2, 7, 8, 13)
        _quarter(working, 3, 4, 9, 14)
    out_words = np.stack(
        [w + s for w, s in zip(working, state)], axis=1
    )  # (N, 16) uint32
    return np.ascontiguousarray(out_words).view(np.uint8).reshape(n, 64)
