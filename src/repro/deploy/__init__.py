"""Multi-process deployment harness.

Everything before this package measured the serving stack inside one
process: threads for concurrency, a virtual clock for the WAN, function
calls for the wire. This package deploys the same stack for real — N
:class:`~repro.net.concurrent.ConcurrentCAServer` processes listening on
TCP, M fleet devices behind each, client load generators as separate OS
processes, and an emulated WAN (latency/jitter/loss) on every link — so
the protocol's end-to-end latency and failure typing can be measured
under conditions the in-process harness cannot produce: real sockets,
real process crashes, real signal-driven shutdown.

Entry points: ``repro deploy --storm`` (CLI) or
:func:`~repro.deploy.storm.run_deployment_storm` (library) for the
WAN-profile sweep; ``repro deploy --storm --crash`` or
:func:`~repro.deploy.storm.run_crash_storm` for the kill-9
crash-restart storm against WAL-backed durable servers.
"""

from repro.deploy.wan import WAN_PROFILES, WanProfile, WanShim, build_shim
from repro.deploy.topology import ENGINE_MODES, TopologySpec
from repro.deploy.enrollment import (
    VerifyingAuthority,
    build_client_device,
    build_fleet_record,
    build_serving_stack,
    client_identity,
    enroll_topology_fleet,
    fleet_index_of,
    tenant_for,
)
from repro.deploy.trace import LoadTrace, TraceEntry, generate_trace
from repro.deploy.supervisor import (
    ManagedProcess,
    ProcessSupervisor,
    RestartBudgetExhausted,
    RestartPolicy,
)
from repro.deploy.storm import (
    CrashRound,
    CrashStormReport,
    DeploymentReport,
    ProfileReport,
    run_crash_storm,
    run_deployment_storm,
)

__all__ = [
    "WAN_PROFILES",
    "WanProfile",
    "WanShim",
    "build_shim",
    "ENGINE_MODES",
    "TopologySpec",
    "VerifyingAuthority",
    "build_client_device",
    "build_fleet_record",
    "build_serving_stack",
    "client_identity",
    "enroll_topology_fleet",
    "fleet_index_of",
    "tenant_for",
    "LoadTrace",
    "TraceEntry",
    "generate_trace",
    "ManagedProcess",
    "ProcessSupervisor",
    "RestartPolicy",
    "RestartBudgetExhausted",
    "CrashRound",
    "CrashStormReport",
    "DeploymentReport",
    "ProfileReport",
    "run_crash_storm",
    "run_deployment_storm",
]
