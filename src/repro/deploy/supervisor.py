"""Process supervision for deployment topologies.

The supervisor owns real OS processes: it spawns them, waits for their
readiness line (servers announce ``DEPLOY-READY <host> <port>`` only
once their listener is accepting, which is how an ephemeral port
round-trips to the parent without a race), health-checks them, restarts
crashed ones with their original command line, and tears the whole
deployment down SIGTERM-first with a bounded grace period before
escalating to SIGKILL.

Every line a child writes is retained (ring-buffered) so a storm report
can show *why* a process died, not just that it did.
"""

from __future__ import annotations

import random
import re
import signal
import subprocess
import threading
import time
from collections import deque
from dataclasses import dataclass, field

__all__ = [
    "ManagedProcess",
    "ProcessSupervisor",
    "ProcessDied",
    "RestartPolicy",
    "RestartBudgetExhausted",
]

#: Output lines retained per child for diagnostics.
_LOG_LINES = 400


class ProcessDied(RuntimeError):
    """A supervised process exited before reaching readiness."""

    def __init__(self, name: str, returncode: int | None, tail: list[str]):
        detail = "\n".join(tail[-12:])
        super().__init__(
            f"process {name!r} died (returncode={returncode}) before "
            f"readiness; output tail:\n{detail}"
        )
        self.name = name
        self.returncode = returncode


class RestartBudgetExhausted(RuntimeError):
    """A child crashed more times than its restart budget allows.

    The supervisor refuses the relaunch: a process dying this often is
    not a transient crash, and restarting it forever would hide the
    failure from the operator (and from a storm's gates).
    """

    def __init__(self, name: str, restarts: int, budget: int):
        super().__init__(
            f"process {name!r} exhausted its restart budget "
            f"({restarts} restarts, budget {budget}); refusing to relaunch"
        )
        self.name = name
        self.restarts = restarts
        self.budget = budget


@dataclass(frozen=True)
class RestartPolicy:
    """Crash-restart policy: exponential backoff with jitter, bounded budget.

    The backoff for restart number *n* (1-based) is
    ``base * 2**(n-1)`` capped at ``cap``, plus a jitter drawn uniformly
    from ``[0, jitter_fraction * delay]``. Jitter comes from a seeded
    PRNG so a storm's restart timeline is reproducible run-to-run while
    still de-synchronising replicas that crash together.
    """

    max_restarts: int = 5
    backoff_base_seconds: float = 0.05
    backoff_cap_seconds: float = 2.0
    jitter_fraction: float = 0.25
    seed: int = 0

    def __post_init__(self):
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be non-negative")
        if self.backoff_base_seconds < 0 or self.backoff_cap_seconds < 0:
            raise ValueError("backoff seconds must be non-negative")
        if not 0 <= self.jitter_fraction <= 1:
            raise ValueError("jitter_fraction must be in [0, 1]")

    def delay_for(self, restart_number: int, rng: random.Random) -> float:
        """Backoff before restart ``restart_number`` (1 = first restart)."""
        if restart_number < 1:
            raise ValueError("restart_number is 1-based")
        delay = min(
            self.backoff_base_seconds * (2 ** (restart_number - 1)),
            self.backoff_cap_seconds,
        )
        return delay + delay * self.jitter_fraction * rng.random()


@dataclass
class ManagedProcess:
    """One supervised child and everything needed to resurrect it."""

    name: str
    argv: list[str]
    env: dict[str, str] | None
    ready_regex: str | None
    popen: subprocess.Popen = field(repr=False)
    output: deque[str] = field(default_factory=lambda: deque(maxlen=_LOG_LINES))
    ready_event: threading.Event = field(default_factory=threading.Event)
    ready_match: re.Match | None = None
    restarts: int = 0

    @property
    def alive(self) -> bool:
        return self.popen.poll() is None

    @property
    def returncode(self) -> int | None:
        return self.popen.poll()

    def tail(self, lines: int = 12) -> list[str]:
        return list(self.output)[-lines:]


class ProcessSupervisor:
    """Spawns, readiness-gates, restarts, and tears down child processes."""

    def __init__(
        self,
        grace_seconds: float = 10.0,
        restart_policy: RestartPolicy | None = None,
        sleep=time.sleep,
    ):
        #: SIGTERM-to-SIGKILL escalation window at teardown.
        self.grace_seconds = grace_seconds
        #: Backoff/budget applied to every :meth:`restart`; None = the
        #: pre-policy behaviour (immediate relaunch, unbounded budget).
        self.restart_policy = restart_policy
        self._rng = random.Random(
            restart_policy.seed if restart_policy is not None else 0
        )
        self._sleep = sleep
        self._processes: dict[str, ManagedProcess] = {}
        self._lock = threading.Lock()
        #: Restarts performed across all children (storm-report fodder).
        self.restarts_total = 0
        #: Backoff actually slept across all restarts, seconds.
        self.backoff_seconds_total = 0.0

    # -- lifecycle ---------------------------------------------------------

    def spawn(
        self,
        name: str,
        argv: list[str],
        env: dict[str, str] | None = None,
        ready_regex: str | None = None,
        ready_timeout: float = 60.0,
    ) -> ManagedProcess:
        """Start a child; if ``ready_regex`` is given, block until a line
        of its output matches (or raise :class:`ProcessDied`)."""
        with self._lock:
            if name in self._processes and self._processes[name].alive:
                raise ValueError(f"process {name!r} is already running")
        managed = self._launch(name, argv, env, ready_regex)
        with self._lock:
            self._processes[name] = managed
        if ready_regex is not None:
            self._await_ready(managed, ready_timeout)
        return managed

    def restart(self, name: str, ready_timeout: float = 60.0) -> ManagedProcess:
        """Kill (if needed) and relaunch a child with its original argv.

        Under a :class:`RestartPolicy` the relaunch is budgeted and
        backed off: restart number *n* of this child first checks the
        budget (raising :class:`RestartBudgetExhausted` once spent),
        then sleeps the policy's jittered exponential delay.
        """
        with self._lock:
            old = self._processes[name]
        restart_number = old.restarts + 1
        if self.restart_policy is not None:
            if restart_number > self.restart_policy.max_restarts:
                raise RestartBudgetExhausted(
                    name, old.restarts, self.restart_policy.max_restarts
                )
            delay = self.restart_policy.delay_for(restart_number, self._rng)
            if delay > 0:
                self._sleep(delay)
            with self._lock:
                self.backoff_seconds_total += delay
        if old.alive:
            self._terminate(old)
        managed = self._launch(old.name, old.argv, old.env, old.ready_regex)
        managed.restarts = restart_number
        with self._lock:
            self._processes[name] = managed
            self.restarts_total += 1
        if managed.ready_regex is not None:
            self._await_ready(managed, ready_timeout)
        return managed

    def kill(self, name: str) -> int | None:
        """SIGKILL a child — the crash storm's ``kill -9`` primitive.

        No grace, no flush: whatever the child had not made durable is
        gone, which is exactly the failure the WAL exists to survive.
        Returns the reaped returncode (negative signal number).
        """
        with self._lock:
            managed = self._processes[name]
        try:
            managed.popen.kill()
        except OSError:
            pass
        try:
            code = managed.popen.wait(timeout=5.0)
        except subprocess.TimeoutExpired:
            code = None
        self._drain_reader(managed)
        return code

    def revive_dead(self, ready_timeout: float = 60.0) -> list[str]:
        """Auto-restart sweep: relaunch every child that exited.

        The crash-restart policy's detection half — callers run it after
        a health check (or on a timer) and every unexpectedly-dead child
        is restarted under the policy's backoff/budget. Returns the
        names restarted, in spawn order.
        """
        with self._lock:
            dead = [
                name
                for name, managed in self._processes.items()
                if not managed.alive
            ]
        revived = []
        for name in dead:
            self.restart(name, ready_timeout=ready_timeout)
            revived.append(name)
        return revived

    def health_check(self) -> dict[str, bool]:
        """name -> alive for every supervised process."""
        with self._lock:
            return {name: p.alive for name, p in self._processes.items()}

    def ensure_alive(self, *names: str) -> None:
        """Raise :class:`ProcessDied` if any named child has exited."""
        with self._lock:
            targets = [
                self._processes[n] for n in (names or self._processes)
            ]
        for managed in targets:
            if not managed.alive:
                raise ProcessDied(
                    managed.name, managed.returncode, list(managed.output)
                )

    def wait(self, name: str, timeout: float | None = None) -> int:
        """Block until a child exits; returns its code."""
        managed = self._processes[name]
        code = managed.popen.wait(timeout=timeout)
        self._drain_reader(managed)
        return code

    def teardown(self) -> dict[str, int | None]:
        """SIGTERM everything, grace-wait, SIGKILL stragglers.

        Returns name -> returncode (None only if even SIGKILL failed to
        reap within a final second, which indicates a kernel-level hang).
        """
        with self._lock:
            processes = list(self._processes.values())
        for managed in processes:
            if managed.alive:
                try:
                    managed.popen.send_signal(signal.SIGTERM)
                except OSError:
                    pass
        deadline = time.monotonic() + self.grace_seconds
        codes: dict[str, int | None] = {}
        for managed in processes:
            remaining = max(0.0, deadline - time.monotonic())
            try:
                codes[managed.name] = managed.popen.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                try:
                    managed.popen.kill()
                except OSError:
                    pass
                try:
                    codes[managed.name] = managed.popen.wait(timeout=1.0)
                except subprocess.TimeoutExpired:
                    codes[managed.name] = None
            self._drain_reader(managed)
        return codes

    def output_of(self, name: str) -> list[str]:
        return list(self._processes[name].output)

    def __enter__(self) -> "ProcessSupervisor":
        return self

    def __exit__(self, *_exc) -> None:
        self.teardown()

    # -- internals ---------------------------------------------------------

    def _launch(
        self,
        name: str,
        argv: list[str],
        env: dict[str, str] | None,
        ready_regex: str | None,
    ) -> ManagedProcess:
        popen = subprocess.Popen(
            argv,
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            bufsize=1,
        )
        managed = ManagedProcess(
            name=name,
            argv=list(argv),
            env=env,
            ready_regex=ready_regex,
            popen=popen,
        )
        pattern = re.compile(ready_regex) if ready_regex else None
        reader = threading.Thread(
            target=self._read_output,
            args=(managed, pattern),
            name=f"supervise-{name}",
            daemon=True,
        )
        reader.start()
        managed._reader = reader  # type: ignore[attr-defined]
        return managed

    @staticmethod
    def _read_output(
        managed: ManagedProcess, pattern: re.Pattern | None
    ) -> None:
        stream = managed.popen.stdout
        assert stream is not None
        for line in stream:
            line = line.rstrip("\n")
            managed.output.append(line)
            if pattern is not None and not managed.ready_event.is_set():
                match = pattern.search(line)
                if match:
                    managed.ready_match = match
                    managed.ready_event.set()
        # EOF: the child closed stdout (usually: exited). Unblock any
        # readiness waiter so it can inspect the corpse.
        managed.ready_event.set()

    def _await_ready(self, managed: ManagedProcess, timeout: float) -> None:
        if not managed.ready_event.wait(timeout=timeout):
            self._terminate(managed)
            raise ProcessDied(
                managed.name, managed.returncode, list(managed.output)
            )
        if managed.ready_match is None:
            # The event fired on EOF, not on the ready line.
            managed.popen.wait(timeout=5.0)
            raise ProcessDied(
                managed.name, managed.returncode, list(managed.output)
            )

    def _terminate(self, managed: ManagedProcess) -> None:
        try:
            managed.popen.send_signal(signal.SIGTERM)
            managed.popen.wait(timeout=self.grace_seconds)
        except (OSError, subprocess.TimeoutExpired):
            try:
                managed.popen.kill()
                managed.popen.wait(timeout=1.0)
            except (OSError, subprocess.TimeoutExpired):
                pass
        self._drain_reader(managed)

    @staticmethod
    def _drain_reader(managed: ManagedProcess) -> None:
        reader = getattr(managed, "_reader", None)
        if reader is not None:
            reader.join(timeout=2.0)
