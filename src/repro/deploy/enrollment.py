"""Deterministic cross-process enrollment.

A real deployment splits the protocol across OS processes, but both
sides still need to agree on the enrolled PUF images: the server enrolls
the fleet into its directory at startup, and each load-generator process
reconstructs the *same* PUF (same seed, same masking reads) to produce
digests the server can actually search for. The functions here are that
shared contract — every parameter that feeds the PUF's RNG lives in one
place, so the two sides cannot drift.

Also here: the server-side false-authentication tripwire. Every found
seed is re-hashed and compared against the digest the client actually
submitted; a mismatch is the one failure a deployment storm can never
explain away, and it rides the admin metrics frame so the storm runner
can assert it stayed zero.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.core import (
    CertificateAuthority,
    RBCSearchService,
    RegistrationAuthority,
)
from repro.core.protocol import ClientDevice
from repro.core.salting import HashChainSalt
from repro.deploy.topology import TopologySpec
from repro.engines import build_engine
from repro.hashes.registry import get_hash
from repro.keygen.interface import get_keygen
from repro.puf.image_db import EncryptedImageDatabase
from repro.puf.model import SRAMPuf
from repro.puf.ternary import TernaryMask, enroll_with_masking
from repro.tenancy.context import DEFAULT_TENANT, namespaced_key

__all__ = [
    "client_identity",
    "fleet_index_of",
    "tenant_for",
    "build_fleet_record",
    "build_client_device",
    "enroll_topology_fleet",
    "build_serving_stack",
    "VerifyingAuthority",
]

#: Seed stride between client PUFs (same convention the chaos fleet uses).
_CLIENT_SEED_STRIDE = 1_000_003
#: Masking-enrollment parameters — must be identical on both sides.
_ENROLL_READS = 8
_ENROLL_INSTABILITY = 0.05


def client_identity(index: int) -> str:
    """The deterministic client id for fleet slot ``index``."""
    return f"dep-{index:04d}"


def fleet_index_of(client_id: str) -> int:
    """Inverse of :func:`client_identity`; raises ValueError otherwise.

    The enrollment wire frame names a fleet slot by its client id; the
    server maps it back to the slot index to rebuild the deterministic
    PUF image — no plaintext enrollment data ever crosses the wire.
    """
    prefix, _, digits = client_id.partition("-")
    if prefix != "dep" or not digits.isdigit():
        raise ValueError(f"not a fleet identity: {client_id!r}")
    return int(digits)


def tenant_for(index: int, tenants: tuple[str, ...]) -> str:
    """Which tenant fleet slot ``index`` belongs to (round-robin)."""
    if not tenants:
        return DEFAULT_TENANT
    return tenants[index % len(tenants)]


def build_fleet_record(
    seed: int, index: int, num_cells: int
) -> tuple[str, SRAMPuf, TernaryMask]:
    """(client_id, puf, mask) for one fleet slot — both sides call this.

    The PUF is seeded from (storm seed, slot index) and the masking
    enrollment consumes a fixed number of reads, so a server process and
    a load-generator process that never share memory still derive the
    byte-identical ternary mask.
    """
    puf = SRAMPuf(
        num_cells=num_cells,
        stable_error=0.001,
        seed=seed * _CLIENT_SEED_STRIDE + index,
    )
    mask = enroll_with_masking(
        puf,
        address=0,
        window=num_cells,
        reads=_ENROLL_READS,
        instability_threshold=_ENROLL_INSTABILITY,
    )
    return client_identity(index), puf, mask


def build_client_device(
    seed: int, index: int, num_cells: int, noise_target_distance: int
) -> tuple[str, ClientDevice, TernaryMask]:
    """A load-generator's client for one fleet slot.

    ``noise_target_distance`` plants the PUF read exactly that many bit
    flips from the enrolled image (the evaluation rig's knob for shell
    depth), so the trace controls how deep each search must go.
    """
    client_id, puf, mask = build_fleet_record(seed, index, num_cells)
    device = ClientDevice(
        client_id,
        puf,
        noise_target_distance=noise_target_distance,
        rng=np.random.default_rng((seed, index)),
    )
    return client_id, device, mask


def enroll_topology_fleet(
    authority: CertificateAuthority,
    topology: TopologySpec,
    seed: int,
    skip_existing: bool = False,
) -> int:
    """Enroll the full deterministic fleet under its tenant namespaces.

    ``skip_existing`` is the durable-restart path: a server whose store
    recovered its records from checkpoint + WAL must not re-enroll them
    (that would bump every version and churn the WAL on every restart) —
    it only fills the slots recovery did not produce. Returns how many
    slots were actually enrolled.
    """
    enrolled = 0
    for index in range(topology.clients):
        client_id, _puf, mask = build_fleet_record(
            seed, index, topology.num_cells
        )
        tenant = tenant_for(index, topology.tenants)
        tenant_id = None if tenant == DEFAULT_TENANT else tenant
        if skip_existing and namespaced_key(tenant_id, client_id) in (
            authority.image_db
        ):
            continue
        authority.enroll(client_id, mask, tenant_id=tenant_id)
        enrolled += 1
    return enrolled


class VerifyingAuthority:
    """Authority wrapper that counts false authentications.

    Thread-safe: the serving layer records each submitted digest before
    admission, and every key issuance re-hashes the found seed against
    it. The counter is exported over the admin metrics frame.
    """

    #: Outstanding digests retained per client; bounds memory if a
    #: client records digests that never reach issuance (sheds, drops).
    _MAX_OUTSTANDING = 16

    def __init__(self, authority: CertificateAuthority):
        self._authority = authority
        self._lock = threading.Lock()
        self._digests: dict[str, list[bytes]] = {}
        self.false_authentications = 0

    def __getattr__(self, name):
        return getattr(self._authority, name)

    def record_digest(
        self, client_id: str, digest: bytes, tenant_id: str | None = None
    ) -> None:
        """Remember an outstanding M1 for this client (keyed per tenant).

        A *list* of outstanding digests, not a single slot: a client's
        retry (or its next request racing the previous search) must not
        overwrite the digest an in-flight search will be verified
        against — that overwrite would misreport a correct search as a
        false authentication.
        """
        with self._lock:
            outstanding = self._digests.setdefault(
                namespaced_key(tenant_id, client_id), []
            )
            if digest not in outstanding:
                outstanding.append(digest)
            del outstanding[: -self._MAX_OUTSTANDING]

    def issue_public_key(
        self, client_id: str, found_seed: bytes, tenant_id: str | None = None
    ) -> bytes:
        key = namespaced_key(tenant_id, client_id)
        with self._lock:
            outstanding = list(self._digests.get(key, ()))
        if outstanding:
            algo = get_hash(self._authority.hash_name)
            digest = algo.scalar(found_seed)
            if digest in outstanding:
                with self._lock:
                    recorded = self._digests.get(key)
                    if recorded is not None and digest in recorded:
                        recorded.remove(digest)
            else:
                with self._lock:
                    self.false_authentications += 1
        if tenant_id is None or tenant_id == DEFAULT_TENANT:
            return self._authority.issue_public_key(client_id, found_seed)
        return self._authority.issue_public_key(
            client_id, found_seed, tenant_id=tenant_id
        )


def build_serving_stack(
    topology: TopologySpec, seed: int, data_dir: str | None = None
):
    """(verifying_authority, scheduler_engine_or_None) for one server.

    ``fleet`` mode builds a :class:`~repro.fleet.engine.FleetSearchEngine`
    over the topology's device tokens, ``sched`` a single-device
    :class:`~repro.sched.engine.ScheduledSearchEngine`; both slot into
    the ConcurrentCAServer's scheduler seat. ``fifo`` returns ``None``
    and the server's bounded worker pool serves directly.

    With ``topology.durability`` set and a ``data_dir`` given, the
    enrollment store is a WAL-backed
    :class:`~repro.durability.store.DurableImageStore`: construction
    recovers checkpoint + WAL, and the fleet enrollment below only fills
    the slots recovery did not restore — a kill-9'd server comes back
    with its acknowledged enrollments (and version counters) intact.
    """
    image_db = EncryptedImageDatabase(b"deploy-master-k!")
    durable = bool(topology.durability) and data_dir is not None
    if durable:
        from repro.durability.store import DurableImageStore

        image_db = DurableImageStore(
            data_dir, b"deploy-master-k!", fsync=topology.durability
        )
    authority = CertificateAuthority(
        search_service=RBCSearchService(
            build_engine(
                "batch",
                hash_name=topology.hash_name,
                batch_size=topology.batch_size,
            ),
            max_distance=topology.max_distance,
            time_threshold=topology.time_budget,
        ),
        salt=HashChainSalt(),
        keygen=get_keygen("aes-128"),
        registration_authority=RegistrationAuthority(),
        image_db=image_db,
        hash_name=topology.hash_name,
    )
    enroll_topology_fleet(authority, topology, seed, skip_existing=durable)
    verifying = VerifyingAuthority(authority)

    engine = None
    if topology.engine == "fleet":
        from repro.fleet.engine import FleetSearchEngine

        engine = FleetSearchEngine(
            *topology.devices,
            hash_name=topology.hash_name,
            batch_size=topology.batch_size,
            max_queue=topology.max_queue,
        )
    elif topology.engine == "sched":
        from repro.sched.engine import ScheduledSearchEngine

        engine = ScheduledSearchEngine(
            hash_name=topology.hash_name,
            batch_size=topology.batch_size,
            max_queue=topology.max_queue,
        )
    return verifying, engine
