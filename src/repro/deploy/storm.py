"""One-command deployment storms.

:func:`run_deployment_storm` is the whole pipeline: for each WAN profile
it stands a topology up as real OS processes (N servers announcing
their ephemeral ports, M load generators replaying their trace slices
over real TCP), waits for the load to drain, scrapes every server's
:class:`~repro.net.concurrent.ServerMetrics` over the admin metrics
frame, SIGTERMs the deployment, and verifies the teardown was *clean* —
every server exits 0 having printed ``DEPLOY-DRAINED``.

The acceptance gates are deliberately blunt:

* zero false authentications on every profile (the server-side tripwire
  re-hashes each found seed against the submitted digest);
* zero untyped failures — every client-observed error must map to a
  typed bucket (``shed:*``, ``dropped``, ``corrupt``, ``busy``, ...);
* every server drains and exits 0 under SIGTERM;
* the ``lan`` profile authenticates 100% of requests.

Results land in ``BENCH_deployment.json``: per-profile end-to-end
p50/p99, throughput, and shed/redispatch/failover counters.
"""

from __future__ import annotations

import json
import os
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.deploy.loadgen import spec_to_json
from repro.deploy.supervisor import ProcessDied, ProcessSupervisor
from repro.deploy.topology import TopologySpec
from repro.net.sockets import RemoteCAServer, SocketTransport

__all__ = [
    "ProfileReport",
    "DeploymentReport",
    "run_deployment_storm",
    "DEFAULT_PROFILES",
]

DEFAULT_PROFILES = ("lan", "wan", "lossy-wan")
_READY_REGEX = r"DEPLOY-READY (\S+) (\d+)"


@dataclass
class ProfileReport:
    """Everything measured about one profile's deployment."""

    profile: str
    requests: int
    outcomes: dict[str, int]
    latency_p50_ms: float
    latency_p99_ms: float
    throughput_rps: float
    wall_seconds: float
    server_counters: dict[str, float]
    shed_reasons: dict[str, int]
    false_authentications: int
    untyped: list[dict] = field(default_factory=list)
    server_exits: dict[str, int | None] = field(default_factory=dict)
    drained: bool = False
    gate_failures: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.gate_failures

    def to_json(self) -> dict:
        return {
            "profile": self.profile,
            "requests": self.requests,
            "outcomes": self.outcomes,
            "latency_p50_ms": round(self.latency_p50_ms, 3),
            "latency_p99_ms": round(self.latency_p99_ms, 3),
            "throughput_rps": round(self.throughput_rps, 3),
            "wall_seconds": round(self.wall_seconds, 3),
            "server_counters": self.server_counters,
            "shed_reasons": self.shed_reasons,
            "false_authentications": self.false_authentications,
            "untyped_failures": len(self.untyped),
            "server_exits": self.server_exits,
            "drained": self.drained,
            "gate_failures": self.gate_failures,
            "passed": self.passed,
        }


@dataclass
class DeploymentReport:
    """A full storm: one ProfileReport per WAN profile."""

    topology: str
    seed: int
    profiles: list[ProfileReport]

    @property
    def passed(self) -> bool:
        return all(p.passed for p in self.profiles)

    def to_json(self) -> dict:
        return {
            "benchmark": "deployment",
            "topology": self.topology,
            "seed": self.seed,
            "passed": self.passed,
            "profiles": [p.to_json() for p in self.profiles],
        }


def _percentile(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[int(rank)]


def _child_env() -> dict[str, str]:
    """Children must import repro the same way this process does."""
    import repro

    src = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else src + os.pathsep + existing
    return env


def _scrape_metrics(host: str, port: int, include_tenants: bool):
    transport = SocketTransport(host, port)
    try:
        return RemoteCAServer(transport).fetch_metrics(
            include_tenants=include_tenants
        )
    finally:
        transport.close()


def _merge_counters(snapshots) -> dict[str, float]:
    merged: dict[str, float] = {}
    for snapshot in snapshots:
        for key, value in snapshot.items():
            merged[key] = merged.get(key, 0) + value
    return merged


def run_profile(
    topology: TopologySpec,
    seed: int,
    requests: int,
    duration_seconds: float,
    num_loadgens: int,
    time_scale: float,
    scratch_dir: Path,
    log=None,
) -> ProfileReport:
    """Stand up, drive, scrape, and tear down one profile's deployment."""
    say = log if log is not None else (lambda _msg: None)
    spec_json = spec_to_json(topology)
    profile = topology.wan_profile
    scratch_dir.mkdir(parents=True, exist_ok=True)
    env = _child_env()
    started = time.monotonic()

    with ProcessSupervisor(grace_seconds=30.0) as supervisor:
        addresses: list[tuple[str, int]] = []
        for index in range(topology.servers):
            managed = supervisor.spawn(
                f"server-{index}",
                [
                    sys.executable,
                    "-m",
                    "repro.deploy.server",
                    "--spec",
                    spec_json,
                    "--seed",
                    str(seed),
                    "--port",
                    "0",
                ],
                env=env,
                ready_regex=_READY_REGEX,
            )
            match = managed.ready_match
            assert match is not None
            addresses.append((match.group(1), int(match.group(2))))
        say(
            f"[{profile}] {topology.servers} server(s) ready at "
            + ", ".join(f"{h}:{p}" for h, p in addresses)
        )

        output_paths: list[Path] = []
        for index in range(num_loadgens):
            output = scratch_dir / f"loadgen-{profile}-{index}.json"
            output_paths.append(output)
            argv = [
                sys.executable,
                "-m",
                "repro.deploy.loadgen",
                "--spec",
                spec_json,
                "--seed",
                str(seed),
                "--requests",
                str(requests),
                "--duration",
                str(duration_seconds),
                "--loadgen-index",
                str(index),
                "--num-loadgens",
                str(num_loadgens),
                "--time-scale",
                str(time_scale),
                "--output",
                str(output),
            ]
            for host, port in addresses:
                argv.extend(["--server", f"{host}:{port}"])
            supervisor.spawn(f"loadgen-{index}", argv, env=env)

        # Health-check the servers while the load drains; a dead server
        # is a storm failure, not a mystery of missing replies.
        loadgen_deadline = time.monotonic() + max(
            120.0, duration_seconds * time_scale * 4 + 120.0
        )
        for index in range(num_loadgens):
            supervisor.ensure_alive(
                *(f"server-{i}" for i in range(topology.servers))
            )
            remaining = max(1.0, loadgen_deadline - time.monotonic())
            code = supervisor.wait(f"loadgen-{index}", timeout=remaining)
            if code != 0:
                raise ProcessDied(
                    f"loadgen-{index}",
                    code,
                    supervisor.output_of(f"loadgen-{index}"),
                )
        say(f"[{profile}] load drained; scraping server metrics")

        snapshots = [
            _scrape_metrics(host, port, bool(topology.tenants))
            for host, port in addresses
        ]
        server_exits = supervisor.teardown()
        drained = all(
            server_exits.get(f"server-{i}") == 0
            and any(
                "DEPLOY-DRAINED" in line
                for line in supervisor.output_of(f"server-{i}")
            )
            for i in range(topology.servers)
        )

    wall = time.monotonic() - started
    records: list[dict] = []
    for path in output_paths:
        with open(path, encoding="utf-8") as handle:
            records.extend(json.load(handle)["records"])
    outcomes: dict[str, int] = {}
    for record in records:
        outcomes[record["outcome"]] = outcomes.get(record["outcome"], 0) + 1
    untyped = [
        r for r in records if r["outcome"].startswith(("untyped:", "retries-exhausted:untyped:"))
    ]
    completed = [
        r["latency_seconds"]
        for r in records
        if r["outcome"] == "authenticated"
    ]
    counters = _merge_counters(s.counters for s in snapshots)
    shed_reasons = _merge_counters(s.shed_reasons for s in snapshots)
    false_auths = sum(s.false_authentications for s in snapshots)

    report = ProfileReport(
        profile=profile,
        requests=len(records),
        outcomes=dict(sorted(outcomes.items())),
        latency_p50_ms=_percentile(completed, 0.50) * 1000.0,
        latency_p99_ms=_percentile(completed, 0.99) * 1000.0,
        throughput_rps=(len(completed) / wall) if wall > 0 else 0.0,
        wall_seconds=wall,
        server_counters=counters,
        shed_reasons={k: int(v) for k, v in shed_reasons.items()},
        false_authentications=false_auths,
        untyped=untyped,
        server_exits=server_exits,
        drained=drained,
    )
    _apply_gates(report, requests)
    return report


def _apply_gates(report: ProfileReport, requests: int) -> None:
    if report.false_authentications:
        report.gate_failures.append(
            f"{report.false_authentications} false authentication(s)"
        )
    if report.untyped:
        kinds = sorted({r["outcome"] for r in report.untyped})
        report.gate_failures.append(
            f"{len(report.untyped)} untyped failure(s): {kinds}"
        )
    if not report.drained:
        report.gate_failures.append(
            f"unclean server shutdown: exits {report.server_exits}"
        )
    if report.requests != requests:
        report.gate_failures.append(
            f"{report.requests} outcomes recorded for {requests} requests"
        )
    if report.profile == "lan":
        authed = report.outcomes.get("authenticated", 0)
        if authed != report.requests:
            report.gate_failures.append(
                f"lan must authenticate everything: "
                f"{authed}/{report.requests}"
            )


def run_deployment_storm(
    topology: TopologySpec | None = None,
    profiles: tuple[str, ...] = DEFAULT_PROFILES,
    seed: int = 0,
    requests: int = 36,
    duration_seconds: float = 6.0,
    num_loadgens: int = 2,
    time_scale: float = 1.0,
    scratch_dir: str | Path | None = None,
    output_path: str | Path | None = None,
    log=None,
) -> DeploymentReport:
    """Run one topology under each profile; optionally write the bench.

    ``scratch_dir`` holds the per-loadgen result JSONs (defaults to
    ``.deploy-scratch`` under the current directory); ``output_path``
    writes the aggregated ``BENCH_deployment.json`` document.
    """
    base = topology if topology is not None else TopologySpec()
    scratch = Path(scratch_dir) if scratch_dir else Path(".deploy-scratch")
    reports = [
        run_profile(
            base.with_profile(name),
            seed=seed,
            requests=requests,
            duration_seconds=duration_seconds,
            num_loadgens=num_loadgens,
            time_scale=time_scale,
            scratch_dir=scratch,
            log=log,
        )
        for name in profiles
    ]
    deployment = DeploymentReport(
        topology=base.describe(), seed=seed, profiles=reports
    )
    if output_path is not None:
        with open(output_path, "w", encoding="utf-8") as handle:
            json.dump(deployment.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")
    return deployment
