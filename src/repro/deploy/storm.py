"""One-command deployment storms.

:func:`run_deployment_storm` is the whole pipeline: for each WAN profile
it stands a topology up as real OS processes (N servers announcing
their ephemeral ports, M load generators replaying their trace slices
over real TCP), waits for the load to drain, scrapes every server's
:class:`~repro.net.concurrent.ServerMetrics` over the admin metrics
frame, SIGTERMs the deployment, and verifies the teardown was *clean* —
every server exits 0 having printed ``DEPLOY-DRAINED``.

The acceptance gates are deliberately blunt:

* zero false authentications on every profile (the server-side tripwire
  re-hashes each found seed against the submitted digest);
* zero untyped failures — every client-observed error must map to a
  typed bucket (``shed:*``, ``dropped``, ``corrupt``, ``busy``, ...);
* every server drains and exits 0 under SIGTERM;
* the ``lan`` profile authenticates 100% of requests.

Results land in ``BENCH_deployment.json``: per-profile end-to-end
p50/p99, throughput, and shed/redispatch/failover counters.
"""

from __future__ import annotations

import json
import os
import re
import sys
import time
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.deploy.loadgen import spec_to_json
from repro.deploy.supervisor import (
    ProcessDied,
    ProcessSupervisor,
    RestartPolicy,
)
from repro.deploy.topology import TopologySpec
from repro.net.errors import TransportError
from repro.net.sockets import RemoteCAServer, SocketTransport

__all__ = [
    "ProfileReport",
    "DeploymentReport",
    "CrashRound",
    "CrashStormReport",
    "run_deployment_storm",
    "run_crash_storm",
    "DEFAULT_PROFILES",
]

DEFAULT_PROFILES = ("lan", "wan", "lossy-wan")
_READY_REGEX = r"DEPLOY-READY (\S+) (\d+)"
_RECOVERED_REGEX = re.compile(r"DEPLOY-RECOVERED (\d+) ([0-9.]+)")


@dataclass
class ProfileReport:
    """Everything measured about one profile's deployment."""

    profile: str
    requests: int
    outcomes: dict[str, int]
    latency_p50_ms: float
    latency_p99_ms: float
    throughput_rps: float
    wall_seconds: float
    server_counters: dict[str, float]
    shed_reasons: dict[str, int]
    false_authentications: int
    untyped: list[dict] = field(default_factory=list)
    server_exits: dict[str, int | None] = field(default_factory=dict)
    drained: bool = False
    gate_failures: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.gate_failures

    def to_json(self) -> dict:
        return {
            "profile": self.profile,
            "requests": self.requests,
            "outcomes": self.outcomes,
            "latency_p50_ms": round(self.latency_p50_ms, 3),
            "latency_p99_ms": round(self.latency_p99_ms, 3),
            "throughput_rps": round(self.throughput_rps, 3),
            "wall_seconds": round(self.wall_seconds, 3),
            "server_counters": self.server_counters,
            "shed_reasons": self.shed_reasons,
            "false_authentications": self.false_authentications,
            "untyped_failures": len(self.untyped),
            "server_exits": self.server_exits,
            "drained": self.drained,
            "gate_failures": self.gate_failures,
            "passed": self.passed,
        }


@dataclass
class DeploymentReport:
    """A full storm: one ProfileReport per WAN profile."""

    topology: str
    seed: int
    profiles: list[ProfileReport]

    @property
    def passed(self) -> bool:
        return all(p.passed for p in self.profiles)

    def to_json(self) -> dict:
        return {
            "benchmark": "deployment",
            "topology": self.topology,
            "seed": self.seed,
            "passed": self.passed,
            "profiles": [p.to_json() for p in self.profiles],
        }


def _percentile(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[int(rank)]


def _child_env() -> dict[str, str]:
    """Children must import repro the same way this process does."""
    import repro

    src = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else src + os.pathsep + existing
    return env


def _scrape_metrics(host: str, port: int, include_tenants: bool):
    transport = SocketTransport(host, port)
    try:
        return RemoteCAServer(transport).fetch_metrics(
            include_tenants=include_tenants
        )
    finally:
        transport.close()


def _merge_counters(snapshots) -> dict[str, float]:
    merged: dict[str, float] = {}
    for snapshot in snapshots:
        for key, value in snapshot.items():
            merged[key] = merged.get(key, 0) + value
    return merged


def run_profile(
    topology: TopologySpec,
    seed: int,
    requests: int,
    duration_seconds: float,
    num_loadgens: int,
    time_scale: float,
    scratch_dir: Path,
    log=None,
) -> ProfileReport:
    """Stand up, drive, scrape, and tear down one profile's deployment."""
    say = log if log is not None else (lambda _msg: None)
    spec_json = spec_to_json(topology)
    profile = topology.wan_profile
    scratch_dir.mkdir(parents=True, exist_ok=True)
    env = _child_env()
    started = time.monotonic()

    with ProcessSupervisor(grace_seconds=30.0) as supervisor:
        addresses: list[tuple[str, int]] = []
        for index in range(topology.servers):
            managed = supervisor.spawn(
                f"server-{index}",
                [
                    sys.executable,
                    "-m",
                    "repro.deploy.server",
                    "--spec",
                    spec_json,
                    "--seed",
                    str(seed),
                    "--port",
                    "0",
                ],
                env=env,
                ready_regex=_READY_REGEX,
            )
            match = managed.ready_match
            assert match is not None
            addresses.append((match.group(1), int(match.group(2))))
        say(
            f"[{profile}] {topology.servers} server(s) ready at "
            + ", ".join(f"{h}:{p}" for h, p in addresses)
        )

        output_paths: list[Path] = []
        for index in range(num_loadgens):
            output = scratch_dir / f"loadgen-{profile}-{index}.json"
            output_paths.append(output)
            argv = [
                sys.executable,
                "-m",
                "repro.deploy.loadgen",
                "--spec",
                spec_json,
                "--seed",
                str(seed),
                "--requests",
                str(requests),
                "--duration",
                str(duration_seconds),
                "--loadgen-index",
                str(index),
                "--num-loadgens",
                str(num_loadgens),
                "--time-scale",
                str(time_scale),
                "--output",
                str(output),
            ]
            for host, port in addresses:
                argv.extend(["--server", f"{host}:{port}"])
            supervisor.spawn(f"loadgen-{index}", argv, env=env)

        # Health-check the servers while the load drains; a dead server
        # is a storm failure, not a mystery of missing replies.
        loadgen_deadline = time.monotonic() + max(
            120.0, duration_seconds * time_scale * 4 + 120.0
        )
        for index in range(num_loadgens):
            supervisor.ensure_alive(
                *(f"server-{i}" for i in range(topology.servers))
            )
            remaining = max(1.0, loadgen_deadline - time.monotonic())
            code = supervisor.wait(f"loadgen-{index}", timeout=remaining)
            if code != 0:
                raise ProcessDied(
                    f"loadgen-{index}",
                    code,
                    supervisor.output_of(f"loadgen-{index}"),
                )
        say(f"[{profile}] load drained; scraping server metrics")

        snapshots = [
            _scrape_metrics(host, port, bool(topology.tenants))
            for host, port in addresses
        ]
        server_exits = supervisor.teardown()
        drained = all(
            server_exits.get(f"server-{i}") == 0
            and any(
                "DEPLOY-DRAINED" in line
                for line in supervisor.output_of(f"server-{i}")
            )
            for i in range(topology.servers)
        )

    wall = time.monotonic() - started
    records: list[dict] = []
    for path in output_paths:
        with open(path, encoding="utf-8") as handle:
            records.extend(json.load(handle)["records"])
    outcomes: dict[str, int] = {}
    for record in records:
        outcomes[record["outcome"]] = outcomes.get(record["outcome"], 0) + 1
    untyped = [
        r for r in records if r["outcome"].startswith(("untyped:", "retries-exhausted:untyped:"))
    ]
    completed = [
        r["latency_seconds"]
        for r in records
        if r["outcome"] == "authenticated"
    ]
    counters = _merge_counters(s.counters for s in snapshots)
    shed_reasons = _merge_counters(s.shed_reasons for s in snapshots)
    false_auths = sum(s.false_authentications for s in snapshots)

    report = ProfileReport(
        profile=profile,
        requests=len(records),
        outcomes=dict(sorted(outcomes.items())),
        latency_p50_ms=_percentile(completed, 0.50) * 1000.0,
        latency_p99_ms=_percentile(completed, 0.99) * 1000.0,
        throughput_rps=(len(completed) / wall) if wall > 0 else 0.0,
        wall_seconds=wall,
        server_counters=counters,
        shed_reasons={k: int(v) for k, v in shed_reasons.items()},
        false_authentications=false_auths,
        untyped=untyped,
        server_exits=server_exits,
        drained=drained,
    )
    _apply_gates(report, requests)
    return report


def _apply_gates(report: ProfileReport, requests: int) -> None:
    if report.false_authentications:
        report.gate_failures.append(
            f"{report.false_authentications} false authentication(s)"
        )
    if report.untyped:
        kinds = sorted({r["outcome"] for r in report.untyped})
        report.gate_failures.append(
            f"{len(report.untyped)} untyped failure(s): {kinds}"
        )
    if not report.drained:
        report.gate_failures.append(
            f"unclean server shutdown: exits {report.server_exits}"
        )
    if report.requests != requests:
        report.gate_failures.append(
            f"{report.requests} outcomes recorded for {requests} requests"
        )
    if report.profile == "lan":
        authed = report.outcomes.get("authenticated", 0)
        if authed != report.requests:
            report.gate_failures.append(
                f"lan must authenticate everything: "
                f"{authed}/{report.requests}"
            )


def run_deployment_storm(
    topology: TopologySpec | None = None,
    profiles: tuple[str, ...] = DEFAULT_PROFILES,
    seed: int = 0,
    requests: int = 36,
    duration_seconds: float = 6.0,
    num_loadgens: int = 2,
    time_scale: float = 1.0,
    scratch_dir: str | Path | None = None,
    output_path: str | Path | None = None,
    log=None,
) -> DeploymentReport:
    """Run one topology under each profile; optionally write the bench.

    ``scratch_dir`` holds the per-loadgen result JSONs (defaults to
    ``.deploy-scratch`` under the current directory); ``output_path``
    writes the aggregated ``BENCH_deployment.json`` document.
    """
    base = topology if topology is not None else TopologySpec()
    scratch = Path(scratch_dir) if scratch_dir else Path(".deploy-scratch")
    reports = [
        run_profile(
            base.with_profile(name),
            seed=seed,
            requests=requests,
            duration_seconds=duration_seconds,
            num_loadgens=num_loadgens,
            time_scale=time_scale,
            scratch_dir=scratch,
            log=log,
        )
        for name in profiles
    ]
    deployment = DeploymentReport(
        topology=base.describe(), seed=seed, profiles=reports
    )
    if output_path is not None:
        with open(output_path, "w", encoding="utf-8") as handle:
            json.dump(deployment.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")
    return deployment


# -- kill-9 crash-restart storm -------------------------------------------


@dataclass
class CrashRound:
    """One kill-9 / restart cycle against one victim server."""

    round_index: int
    victim: str
    acked_before_kill: int
    refused_during_outage: int
    recovered_records: int
    recovery_seconds: float
    lost_acknowledged: int
    reenrolled: int

    def to_json(self) -> dict:
        return {
            "round": self.round_index,
            "victim": self.victim,
            "acked_before_kill": self.acked_before_kill,
            "refused_during_outage": self.refused_during_outage,
            "recovered_records": self.recovered_records,
            "recovery_seconds": round(self.recovery_seconds, 6),
            "lost_acknowledged": self.lost_acknowledged,
            "reenrolled": self.reenrolled,
        }


@dataclass
class CrashStormReport:
    """Everything the crash-restart storm measured and gated on."""

    topology: str
    seed: int
    crashes: int
    clients: int
    fsync: str
    rounds: list[CrashRound] = field(default_factory=list)
    acknowledged_total: int = 0
    lost_acknowledged: int = 0
    nonce_reuse_trips: int = 0
    false_authentications: int = 0
    auth_outcomes: dict[str, int] = field(default_factory=dict)
    restarts: int = 0
    backoff_seconds: float = 0.0
    durable_enroll_rps: float = 0.0
    lossy_enroll_rps: float = 0.0
    durability_overhead_pct: float = 0.0
    server_exits: dict[str, int | None] = field(default_factory=dict)
    drained: bool = False
    gate_failures: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.gate_failures

    def to_json(self) -> dict:
        return {
            "benchmark": "recovery",
            "topology": self.topology,
            "seed": self.seed,
            "crashes": self.crashes,
            "clients": self.clients,
            "fsync": self.fsync,
            "rounds": [r.to_json() for r in self.rounds],
            "acknowledged_total": self.acknowledged_total,
            "lost_acknowledged": self.lost_acknowledged,
            "nonce_reuse_trips": self.nonce_reuse_trips,
            "false_authentications": self.false_authentications,
            "auth_outcomes": self.auth_outcomes,
            "restarts": self.restarts,
            "backoff_seconds": round(self.backoff_seconds, 6),
            "durable_enroll_rps": round(self.durable_enroll_rps, 3),
            "lossy_enroll_rps": round(self.lossy_enroll_rps, 3),
            "durability_overhead_pct": round(self.durability_overhead_pct, 2),
            "server_exits": self.server_exits,
            "drained": self.drained,
            "gate_failures": self.gate_failures,
            "passed": self.passed,
        }


def _last_recovery_line(lines: list[str]) -> tuple[int, float]:
    """(records, seconds) from the newest DEPLOY-RECOVERED line."""
    for line in reversed(lines):
        match = _RECOVERED_REGEX.search(line)
        if match:
            return int(match.group(1)), float(match.group(2))
    return 0, 0.0


def _enroll_burst(
    remote: RemoteCAServer,
    client_ids: list[str],
    acked: dict[str, int],
    kill_at: int | None = None,
    on_kill=None,
) -> tuple[int, int]:
    """Drive one sequential enrollment burst; optionally kill -9 mid-burst.

    Returns ``(acked, refused)``. An enrollment counts as acknowledged
    only when its reply frame arrived — exactly the set the durability
    gate holds the server to after the crash. Refusals during the
    outage are typed transport failures (connection reset/refused), the
    honest answer for a dead server.
    """
    acked_count = 0
    refused = 0
    for position, client_id in enumerate(client_ids):
        if kill_at is not None and position == kill_at and on_kill is not None:
            on_kill()
            on_kill = None
        try:
            reply = remote.enroll(client_id)
        except TransportError:
            refused += 1
            continue
        acked[client_id] = reply.version
        acked_count += 1
    return acked_count, refused


def _timed_enroll_rate(remote: RemoteCAServer, client_ids: list[str]) -> float:
    """Acknowledged enrollments per second over one sequential burst."""
    started = time.monotonic()
    for client_id in client_ids:
        remote.enroll(client_id)
    wall = time.monotonic() - started
    return len(client_ids) / wall if wall > 0 else 0.0


def _auth_round(
    spec: TopologySpec, seed: int, addresses: list[tuple[str, int]], count: int
) -> dict[str, int]:
    """A few real authentications after recovery — the false-auth probe."""
    import numpy as np

    from repro.deploy.enrollment import build_client_device, tenant_for
    from repro.net.client import NetworkClient
    from repro.reliability.retry import RetryPolicy

    outcomes: dict[str, int] = {}
    for index in range(min(count, spec.clients)):
        host, port = addresses[index % len(addresses)]
        transport = SocketTransport(host, port)
        _cid, device, mask = build_client_device(
            seed, index, spec.num_cells, noise_target_distance=1
        )
        client = NetworkClient(
            device,
            transport,
            reference_mask=mask,
            retry_policy=RetryPolicy(
                max_attempts=4,
                base_backoff_seconds=0.05,
                max_backoff_seconds=0.5,
                jitter_fraction=0.3,
            ),
            rng=np.random.default_rng((seed, index, 0xC2A54)),
            tenant_id=tenant_for(index, spec.tenants),
        )
        try:
            result = client.authenticate(RemoteCAServer(transport))
        except BaseException as exc:  # typed bucket, same as loadgen
            from repro.deploy.loadgen import classify_failure

            key = classify_failure(exc)
        else:
            key = "authenticated" if result.authenticated else (
                "timed-out" if result.timed_out else "denied"
            )
        finally:
            transport.close()
        outcomes[key] = outcomes.get(key, 0) + 1
    return outcomes


def run_crash_storm(
    topology: TopologySpec | None = None,
    seed: int = 0,
    crashes: int = 3,
    auth_requests: int = 4,
    restart_policy: RestartPolicy | None = None,
    scratch_dir: str | Path | None = None,
    output_path: str | Path | None = None,
    log=None,
) -> CrashStormReport:
    """Kill -9 servers mid-enrollment-burst; gate on zero durable loss.

    The storm enrolls the deterministic fleet over real TCP against
    WAL-backed servers, SIGKILLs a victim server halfway through each
    round's re-enrollment burst, restarts it under the supervisor's
    backoff/budget policy, and then holds the recovered server to three
    invariants: every *acknowledged* enrollment survives at its version
    or higher, the nonce-reuse tripwire never fires, and post-recovery
    authentications produce zero false auths. The report also prices
    durability: acknowledged-enrollment throughput under the topology's
    fsync policy versus a no-fsync lossy baseline.
    """
    from repro.deploy.enrollment import client_identity

    say = log if log is not None else (lambda _msg: None)
    base = topology if topology is not None else TopologySpec(
        servers=1, engine="fifo", wan_profile="lan", clients=8
    )
    if not base.durability:
        base = replace(base, durability="always")
    policy = restart_policy if restart_policy is not None else RestartPolicy(
        max_restarts=max(4, 2 * crashes), seed=seed
    )
    scratch = Path(scratch_dir) if scratch_dir else Path(".deploy-scratch")
    scratch.mkdir(parents=True, exist_ok=True)
    spec_json = spec_to_json(base)
    env = _child_env()
    report = CrashStormReport(
        topology=base.describe(),
        seed=seed,
        crashes=crashes,
        clients=base.clients,
        fsync=base.durability,
    )

    def spawn(supervisor, name, data_dir, extra_spec_json=None):
        managed = supervisor.spawn(
            name,
            [
                sys.executable,
                "-m",
                "repro.deploy.server",
                "--spec",
                extra_spec_json or spec_json,
                "--seed",
                str(seed),
                "--port",
                "0",
                "--data-dir",
                str(data_dir),
            ],
            env=env,
            ready_regex=_READY_REGEX,
        )
        match = managed.ready_match
        assert match is not None
        return match.group(1), int(match.group(2))

    with ProcessSupervisor(
        grace_seconds=30.0, restart_policy=policy
    ) as supervisor:
        addresses = [
            spawn(supervisor, f"server-{i}", scratch / f"crash-server-{i}")
            for i in range(base.servers)
        ]
        say(f"[crash] {base.servers} durable server(s) ready "
            f"(fsync={base.durability})")

        transports = [SocketTransport(h, p) for h, p in addresses]
        remotes = [RemoteCAServer(t) for t in transports]
        #: client_id -> last acknowledged version, per server index.
        acked: list[dict[str, int]] = [{} for _ in range(base.servers)]

        def slots_of(server_index: int) -> list[str]:
            return [
                client_identity(i)
                for i in range(base.clients)
                if i % base.servers == server_index
            ]

        # Phase 1: a clean timed burst — the durable throughput figure
        # and the acknowledged baseline every later gate measures against.
        started = time.monotonic()
        for index in range(base.servers):
            count, refused = _enroll_burst(
                remotes[index], slots_of(index), acked[index]
            )
            if refused:
                raise ProcessDied(
                    f"server-{index}",
                    None,
                    supervisor.output_of(f"server-{index}"),
                )
        wall = time.monotonic() - started
        report.durable_enroll_rps = base.clients / wall if wall > 0 else 0.0
        say(f"[crash] baseline burst: {base.clients} acked in {wall:.2f}s "
            f"({report.durable_enroll_rps:.1f}/s)")

        # Phase 2: kill -9 a victim mid-burst, restart, verify, repeat.
        for round_index in range(crashes):
            victim_index = round_index % base.servers
            victim = f"server-{victim_index}"
            burst = slots_of(victim_index)
            kill_at = max(1, len(burst) // 2)
            acked_now, refused = _enroll_burst(
                remotes[victim_index],
                burst,
                acked[victim_index],
                kill_at=kill_at,
                on_kill=lambda: supervisor.kill(victim),
            )
            managed = supervisor.restart(victim)
            match = managed.ready_match
            assert match is not None
            addresses[victim_index] = (match.group(1), int(match.group(2)))
            transports[victim_index].close()
            transports[victim_index] = SocketTransport(
                *addresses[victim_index]
            )
            remotes[victim_index] = RemoteCAServer(transports[victim_index])
            recovered, recovery_seconds = _last_recovery_line(
                supervisor.output_of(victim)
            )

            lost = 0
            for client_id, version in sorted(acked[victim_index].items()):
                reply = remotes[victim_index].enroll(client_id, probe=True)
                if reply.version < version:
                    lost += 1
            reenrolled, refused_after = _enroll_burst(
                remotes[victim_index], burst, acked[victim_index]
            )
            if refused_after:
                report.gate_failures.append(
                    f"round {round_index}: {refused_after} enrollments "
                    f"refused after restart"
                )
            report.rounds.append(
                CrashRound(
                    round_index=round_index,
                    victim=victim,
                    acked_before_kill=acked_now,
                    refused_during_outage=refused,
                    recovered_records=recovered,
                    recovery_seconds=recovery_seconds,
                    lost_acknowledged=lost,
                    reenrolled=reenrolled,
                )
            )
            report.lost_acknowledged += lost
            say(f"[crash] round {round_index}: killed {victim} after "
                f"{acked_now} acks, recovered {recovered} records in "
                f"{recovery_seconds * 1000:.1f}ms, lost {lost}")

        report.acknowledged_total = sum(len(a) for a in acked)
        report.restarts = supervisor.restarts_total
        report.backoff_seconds = supervisor.backoff_seconds_total

        # Phase 3: the recovered deployment must still authenticate
        # honestly — this is what feeds the false-auth tripwire.
        report.auth_outcomes = _auth_round(
            base, seed, addresses, auth_requests
        )
        say(f"[crash] post-recovery auth: {report.auth_outcomes}")

        snapshots = [
            _scrape_metrics(host, port, include_tenants=False)
            for host, port in addresses
        ]
        for transport in transports:
            transport.close()

        # Phase 4: the lossy baseline — same burst, WAL without fsync.
        lossy_spec = replace(base, servers=1, durability="none")
        lossy_host, lossy_port = spawn(
            supervisor,
            "lossy-0",
            scratch / "crash-lossy-0",
            extra_spec_json=spec_to_json(lossy_spec),
        )
        with SocketTransport(lossy_host, lossy_port) as lossy_transport:
            report.lossy_enroll_rps = _timed_enroll_rate(
                RemoteCAServer(lossy_transport),
                [client_identity(i) for i in range(base.clients)],
            )
        if report.lossy_enroll_rps > 0:
            report.durability_overhead_pct = 100.0 * (
                1.0 - report.durable_enroll_rps / report.lossy_enroll_rps
            )
        say(f"[crash] durable {report.durable_enroll_rps:.1f}/s vs lossy "
            f"{report.lossy_enroll_rps:.1f}/s "
            f"({report.durability_overhead_pct:+.1f}% cost)")

        report.server_exits = supervisor.teardown()
        report.drained = all(
            report.server_exits.get(f"server-{i}") == 0
            and any(
                "DEPLOY-DRAINED" in line
                for line in supervisor.output_of(f"server-{i}")
            )
            for i in range(base.servers)
        )

    counters = _merge_counters(s.counters for s in snapshots)
    report.nonce_reuse_trips = int(
        counters.get("durable_nonce_reuse_trips", 0)
    )
    report.false_authentications = sum(
        s.false_authentications for s in snapshots
    )
    _apply_crash_gates(report, auth_requests)
    if output_path is not None:
        with open(output_path, "w", encoding="utf-8") as handle:
            json.dump(report.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")
    return report


def _apply_crash_gates(report: CrashStormReport, auth_requests: int) -> None:
    if report.lost_acknowledged:
        report.gate_failures.append(
            f"{report.lost_acknowledged} acknowledged enrollment(s) lost "
            f"across {report.crashes} kill-9 crash(es)"
        )
    if report.nonce_reuse_trips:
        report.gate_failures.append(
            f"nonce-reuse tripwire fired {report.nonce_reuse_trips} time(s)"
        )
    if report.false_authentications:
        report.gate_failures.append(
            f"{report.false_authentications} false authentication(s)"
        )
    authed = report.auth_outcomes.get("authenticated", 0)
    expected = min(auth_requests, report.clients)
    if authed != expected:
        report.gate_failures.append(
            f"post-recovery auth: {authed}/{expected} authenticated "
            f"({report.auth_outcomes})"
        )
    if not report.drained:
        report.gate_failures.append(
            f"unclean final shutdown: exits {report.server_exits}"
        )
