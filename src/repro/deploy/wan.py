"""WAN emulation profiles for the socket path.

The in-process stack emulated the network by *charging a virtual clock*
(:class:`~repro.net.transport.LatencyModel`); a real multi-process
deployment needs the network conditions to really happen. A
:class:`WanShim` sits on a :class:`~repro.net.sockets.SocketTransport`'s
send path and sleeps out emulated one-way latency plus jitter, drops
frames (the frame never reaches the socket; the sender sees a typed
:class:`~repro.net.errors.MessageDropped` after the emulated wait), and
corrupts frames (the CRC framing converts the flipped bit into a typed
``corrupt`` refusal on the server).

Determinism comes from the same machinery every other chaos axis uses:
a profile maps onto a :class:`~repro.reliability.faults.FaultSpec`, one
:class:`~repro.reliability.faults.FaultPlan` per storm derives a keyed
:class:`~repro.reliability.faults.MessageFaultInjector` per client link,
and jitter draws come from the plan's client stream — so two storms with
the same (profile, seed) fault the exact same frames.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.net.errors import MessageDropped
from repro.reliability.faults import FaultPlan, FaultSpec, MessageFaultInjector

__all__ = ["WanProfile", "WanShim", "WAN_PROFILES", "build_shim"]


@dataclass(frozen=True)
class WanProfile:
    """Latency/jitter/loss personality of one emulated network path."""

    name: str
    #: Emulated one-way delay applied to every outgoing frame.
    one_way_seconds: float = 0.0
    #: Uniform extra delay in [0, jitter_seconds) per frame.
    jitter_seconds: float = 0.0
    #: Probability one frame is lost (sender times out, typed).
    drop_rate: float = 0.0
    #: Probability one frame has a bit flipped (CRC catches it, typed).
    corrupt_rate: float = 0.0
    #: Probability of a one-off queueing delay, and its size.
    spike_rate: float = 0.0
    spike_seconds: float = 0.0
    #: How long a sender waits before concluding a dropped frame is gone
    #: (kept small so lossy storms stay quick; a real TCP stack would
    #: wait out its retransmission timers similarly).
    drop_wait_seconds: float = 0.25

    def __post_init__(self):
        for rate_field in ("drop_rate", "corrupt_rate", "spike_rate"):
            value = getattr(self, rate_field)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{rate_field} must be in [0, 1], got {value}")
        if self.one_way_seconds < 0 or self.jitter_seconds < 0:
            raise ValueError("delays must be non-negative")

    def fault_spec(self) -> FaultSpec:
        """This profile as a reliability fault spec (one draw per frame)."""
        return FaultSpec(
            name=f"wan-{self.name}",
            drop_rate=self.drop_rate,
            corrupt_rate=self.corrupt_rate,
            latency_spike_rate=self.spike_rate,
            latency_spike_seconds=self.spike_seconds,
        )


#: The three deployment profiles the storm runner stands topologies up
#: under. ``lan`` is the same-rack baseline; ``wan`` matches the order of
#: the paper's measured U.S. link (tens of ms each way); ``lossy-wan``
#: adds loss and corruption on top — the acceptance-criteria profile.
WAN_PROFILES: dict[str, WanProfile] = {
    "lan": WanProfile(
        name="lan",
        one_way_seconds=0.0002,
        jitter_seconds=0.0003,
    ),
    "wan": WanProfile(
        name="wan",
        one_way_seconds=0.030,
        jitter_seconds=0.010,
        spike_rate=0.02,
        spike_seconds=0.20,
    ),
    "lossy-wan": WanProfile(
        name="lossy-wan",
        one_way_seconds=0.040,
        jitter_seconds=0.020,
        drop_rate=0.08,
        corrupt_rate=0.04,
        spike_rate=0.03,
        spike_seconds=0.30,
        drop_wait_seconds=0.25,
    ),
}


class WanShim:
    """Per-link WAN emulation driven by a seeded fault injector."""

    def __init__(
        self,
        profile: WanProfile,
        injector: MessageFaultInjector,
        rng: np.random.Generator,
        sleep=time.sleep,
    ):
        self.profile = profile
        self.injector = injector
        self._rng = rng
        self._sleep = sleep
        #: (frame_index, label, fault_kind) for every faulted frame.
        self.fault_log: list[tuple[int, str, str]] = []
        self.frames_shimmed = 0
        self.emulated_seconds = 0.0

    def apply(self, label: str, payload: bytes) -> bytes:
        """Emulate the path for one outgoing frame (may sleep / raise)."""
        index = self.frames_shimmed
        self.frames_shimmed += 1
        fault = self.injector.next(label)
        if fault is not None:
            self.fault_log.append((index, label, fault))
        delay = self.profile.one_way_seconds
        if self.profile.jitter_seconds:
            delay += float(self._rng.random()) * self.profile.jitter_seconds
        if fault == "latency-spike":
            delay += self.profile.spike_seconds
        if delay:
            self.emulated_seconds += delay
            self._sleep(delay)
        if fault == "drop":
            waited = delay + self.profile.drop_wait_seconds
            self.emulated_seconds += self.profile.drop_wait_seconds
            self._sleep(self.profile.drop_wait_seconds)
            raise MessageDropped(label, waited)
        if fault == "corrupt":
            return self.injector.corrupt(payload)
        # duplicate / reorder are virtual-clock concepts; over a real
        # request/response socket they degenerate to extra latency and
        # are not modeled here (the profiles above never draw them).
        return payload


def build_shim(
    profile: WanProfile | str, seed: int, link_index: int, sleep=time.sleep
) -> WanShim:
    """The deterministic shim for one client link of one storm.

    Keyed exactly like every other chaos stream: link 7's fault schedule
    is the same whether or not link 3 ever sent a frame.
    """
    if isinstance(profile, str):
        try:
            profile = WAN_PROFILES[profile]
        except KeyError:
            raise ValueError(
                f"unknown WAN profile {profile!r}; "
                f"choices: {sorted(WAN_PROFILES)}"
            ) from None
    plan = FaultPlan(profile.fault_spec(), seed)
    return WanShim(
        profile,
        plan.transport_injector(link_index),
        plan.client_rng(link_index),
        sleep=sleep,
    )
