"""CA server process.

``python -m repro.deploy.server`` is one server of a deployment
topology: it builds the deterministic serving stack for the storm seed
(authority + false-authentication tripwire + engine per the topology's
engine mode), wraps it in a :class:`~repro.net.concurrent.ConcurrentCAServer`
and a :class:`~repro.net.sockets.SocketCAServer`, and prints::

    DEPLOY-READY <host> <port>

once the listener is accepting — the supervisor blocks on that line, so
an ephemeral port (``--port 0``) round-trips to the parent without a
race.

A durable topology (``durability`` set, ``--data-dir`` given) recovers
its WAL-backed enrollment store *before* announcing readiness and
prints the recovery outcome first::

    DEPLOY-RECOVERED <records> <seconds>

so the storm runner can read the recovery cost straight off the child's
output. Such a server also serves ``enroll_request`` frames: the frame
names a deterministic fleet slot, the server rebuilds the PUF image
locally (nothing secret on the wire), and the reply is sent only after
the record is durable under the WAL's fsync policy.

Shutdown is signal-safe by construction: the SIGTERM/SIGINT handler
only sets a :class:`threading.Event` (handlers run on the main thread
between bytecodes — doing real teardown there can deadlock against a
worker holding the server lock). The main thread observes the event and
runs the ordinary ``close(drain=True)`` path: in-flight searches drain
within their time budgets, queued work is shed with a typed reason, the
process prints ``DEPLOY-DRAINED`` and exits 0. SIGKILL skips all of
this — which is the point of the WAL.
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading

from repro.deploy.enrollment import (
    build_fleet_record,
    build_serving_stack,
    fleet_index_of,
    tenant_for,
)
from repro.deploy.loadgen import spec_from_json
from repro.deploy.topology import TopologySpec
from repro.net.concurrent import ConcurrentCAServer
from repro.net.messages import EnrollReply, EnrollRequest
from repro.net.sockets import SocketCAServer
from repro.tenancy.context import DEFAULT_TENANT, namespaced_key
from repro.tenancy.registry import TenantContext, TenantRegistry

__all__ = ["build_server", "serve"]


def _enroll_handler(verifying, concurrent, spec: TopologySpec, seed: int):
    """The server side of the enroll frame: rebuild, enroll, ack durable."""
    lock = threading.Lock()

    def handle(request: EnrollRequest) -> EnrollReply:
        index = fleet_index_of(request.client_id)
        tenant = tenant_for(index, spec.tenants)
        tenant_id = None if tenant == DEFAULT_TENANT else tenant
        key = namespaced_key(tenant_id, request.client_id)
        db = verifying.image_db
        if request.probe:
            version = db.version_of(key) if key in db else -1
            return EnrollReply(
                client_id=request.client_id, version=version, enrolled=False
            )
        _cid, _puf, mask = build_fleet_record(seed, index, spec.num_cells)
        with lock:
            # Returning from enroll() is the ack: under a durable store
            # the record has already hit the WAL per the fsync policy.
            verifying.enroll(request.client_id, mask, tenant_id=tenant_id)
            version = db.version_of(key)
        concurrent.metrics.record_enrollment()
        return EnrollReply(
            client_id=request.client_id, version=version, enrolled=True
        )

    return handle


def build_server(
    spec: TopologySpec,
    seed: int,
    host: str = "127.0.0.1",
    port: int = 0,
    data_dir: str | None = None,
) -> SocketCAServer:
    """The full serving stack for one server process (not yet started).

    The returned server carries a ``recovery_info`` attribute: the
    durable store's :class:`~repro.durability.log.RecoveryResult`, or
    ``None`` for an in-memory topology.
    """
    verifying, engine = build_serving_stack(spec, seed, data_dir=data_dir)
    tenants = None
    if spec.tenants:
        tenants = TenantRegistry(
            TenantContext(tenant_id=name) for name in spec.tenants
        )
    concurrent = ConcurrentCAServer(
        verifying,
        workers=spec.workers,
        max_queue=spec.max_queue,
        scheduler=engine,
        tenants=tenants,
    )
    store = verifying.image_db
    recovery = getattr(store, "recovery", None)
    if recovery is not None:
        concurrent.metrics.record_recovery(
            recovery.recovered_records, recovery.recovery_seconds
        )
    server = SocketCAServer(
        concurrent,
        host=host,
        port=port,
        false_auth_counter=lambda: verifying.false_authentications,
        enroll_handler=_enroll_handler(verifying, concurrent, spec, seed),
        extra_counters=getattr(store, "counters", None),
    )
    server.recovery_info = recovery
    server.durable_store = store if recovery is not None else None
    return server


def serve(
    spec: TopologySpec,
    seed: int,
    host: str = "127.0.0.1",
    port: int = 0,
    data_dir: str | None = None,
    ready_stream=None,
) -> int:
    """Run one server until SIGTERM/SIGINT; returns the exit code."""
    stream = ready_stream if ready_stream is not None else sys.stdout
    stop = threading.Event()

    def _on_signal(_signum, _frame):
        # Only flip the flag: the handler may interrupt a thread that
        # holds server locks; teardown happens on the main loop below.
        stop.set()

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)

    server = build_server(spec, seed, host=host, port=port, data_dir=data_dir)
    recovery = server.recovery_info
    if recovery is not None:
        print(
            f"DEPLOY-RECOVERED {recovery.recovered_records} "
            f"{recovery.recovery_seconds:.6f}",
            file=stream,
            flush=True,
        )
    bound_host, bound_port = server.start()
    print(f"DEPLOY-READY {bound_host} {bound_port}", file=stream, flush=True)
    try:
        while not stop.wait(timeout=0.2):
            pass
    finally:
        server.close(drain=True)
        if server.durable_store is not None:
            # Clean exit: compact the WAL so the *next* start replays
            # nothing. A SIGKILL never reaches this line — recovery
            # earns its keep there.
            server.durable_store.checkpoint()
            server.durable_store.close()
    print("DEPLOY-DRAINED", file=stream, flush=True)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.deploy.server",
        description="one CA server process of a deployment topology",
    )
    parser.add_argument("--spec", required=True, help="TopologySpec JSON")
    parser.add_argument("--seed", type=int, required=True)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0, help="0 binds an ephemeral port"
    )
    parser.add_argument(
        "--data-dir",
        default=None,
        help="durable-store directory (required for a durable topology)",
    )
    args = parser.parse_args(argv)
    return serve(
        spec_from_json(args.spec),
        args.seed,
        host=args.host,
        port=args.port,
        data_dir=args.data_dir,
    )


if __name__ == "__main__":
    sys.exit(main())
