"""CA server process.

``python -m repro.deploy.server`` is one server of a deployment
topology: it builds the deterministic serving stack for the storm seed
(authority + false-authentication tripwire + engine per the topology's
engine mode), wraps it in a :class:`~repro.net.concurrent.ConcurrentCAServer`
and a :class:`~repro.net.sockets.SocketCAServer`, and prints::

    DEPLOY-READY <host> <port>

once the listener is accepting — the supervisor blocks on that line, so
an ephemeral port (``--port 0``) round-trips to the parent without a
race.

Shutdown is signal-safe by construction: the SIGTERM/SIGINT handler
only sets a :class:`threading.Event` (handlers run on the main thread
between bytecodes — doing real teardown there can deadlock against a
worker holding the server lock). The main thread observes the event and
runs the ordinary ``close(drain=True)`` path: in-flight searches drain
within their time budgets, queued work is shed with a typed reason, the
process prints ``DEPLOY-DRAINED`` and exits 0.
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading

from repro.deploy.enrollment import build_serving_stack
from repro.deploy.loadgen import spec_from_json
from repro.deploy.topology import TopologySpec
from repro.net.concurrent import ConcurrentCAServer
from repro.net.sockets import SocketCAServer
from repro.tenancy.registry import TenantContext, TenantRegistry

__all__ = ["build_server", "serve"]


def build_server(
    spec: TopologySpec, seed: int, host: str = "127.0.0.1", port: int = 0
) -> SocketCAServer:
    """The full serving stack for one server process (not yet started)."""
    verifying, engine = build_serving_stack(spec, seed)
    tenants = None
    if spec.tenants:
        tenants = TenantRegistry(
            TenantContext(tenant_id=name) for name in spec.tenants
        )
    concurrent = ConcurrentCAServer(
        verifying,
        workers=spec.workers,
        max_queue=spec.max_queue,
        scheduler=engine,
        tenants=tenants,
    )
    return SocketCAServer(
        concurrent,
        host=host,
        port=port,
        false_auth_counter=lambda: verifying.false_authentications,
    )


def serve(
    spec: TopologySpec,
    seed: int,
    host: str = "127.0.0.1",
    port: int = 0,
    ready_stream=None,
) -> int:
    """Run one server until SIGTERM/SIGINT; returns the exit code."""
    stream = ready_stream if ready_stream is not None else sys.stdout
    stop = threading.Event()

    def _on_signal(_signum, _frame):
        # Only flip the flag: the handler may interrupt a thread that
        # holds server locks; teardown happens on the main loop below.
        stop.set()

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)

    server = build_server(spec, seed, host=host, port=port)
    bound_host, bound_port = server.start()
    print(f"DEPLOY-READY {bound_host} {bound_port}", file=stream, flush=True)
    try:
        while not stop.wait(timeout=0.2):
            pass
    finally:
        server.close(drain=True)
    print("DEPLOY-DRAINED", file=stream, flush=True)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.deploy.server",
        description="one CA server process of a deployment topology",
    )
    parser.add_argument("--spec", required=True, help="TopologySpec JSON")
    parser.add_argument("--seed", type=int, required=True)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0, help="0 binds an ephemeral port"
    )
    args = parser.parse_args(argv)
    return serve(
        spec_from_json(args.spec), args.seed, host=args.host, port=args.port
    )


if __name__ == "__main__":
    sys.exit(main())
