"""Load-generator process.

``python -m repro.deploy.loadgen`` is one client-side process of a
deployment storm. It regenerates the storm's deterministic trace
(:mod:`repro.deploy.trace`), keeps the fleet slots it owns (slot mod
number of load generators), and replays its slice in real time: each
entry fires at its arrival offset, builds the deterministic client
device for its slot with the entry's planted shell depth, and runs the
full Figure 1 flow over a real TCP connection through the storm's WAN
shim — per-tenant identity, per-entry deadline, bounded typed retries.

Every outcome is classified into a typed bucket; anything that escapes
the type system lands in ``untyped`` with its traceback, which the storm
runner treats as a hard failure. Results are written as JSON to
``--output`` and the process prints ``LOADGEN-DONE`` on success so the
supervisor can tell a clean drain from a crash.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
import traceback
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict

import numpy as np

from repro.deploy.enrollment import build_client_device
from repro.deploy.topology import TopologySpec
from repro.deploy.trace import TraceEntry, generate_trace
from repro.deploy.wan import build_shim
from repro.net.client import NetworkClient
from repro.net.errors import (
    ConnectionLost,
    MessageCorrupted,
    MessageDropped,
    ServerBusy,
    ServerClosed,
    TransportError,
)
from repro.net.sockets import RemoteCAServer, SocketTransport
from repro.reliability.retry import (
    DeadlineExceeded,
    RetriesExhausted,
    RetryPolicy,
)
from repro.sched.errors import RequestShed

__all__ = ["run_loadgen", "classify_failure", "spec_to_json", "spec_from_json"]

#: Concurrent in-flight requests per load-generator process.
_MAX_IN_FLIGHT = 16


def spec_to_json(spec: TopologySpec) -> str:
    """A TopologySpec as the JSON string shipped on child argv."""
    return json.dumps(asdict(spec), sort_keys=True)


def spec_from_json(raw: str) -> TopologySpec:
    data = json.loads(raw)
    data["devices"] = tuple(data["devices"])
    data["tenants"] = tuple(data["tenants"])
    return TopologySpec(**data)


def classify_failure(exc: BaseException) -> str:
    """Map an exception to its typed outcome bucket (never raises)."""
    if isinstance(exc, RetriesExhausted):
        inner = classify_failure(exc.last_error) if exc.last_error else "error"
        return f"retries-exhausted:{inner}"
    if isinstance(exc, DeadlineExceeded):
        return "deadline"
    if isinstance(exc, RequestShed):
        return f"shed:{exc.reason}"
    if isinstance(exc, MessageDropped):
        return "dropped"
    if isinstance(exc, MessageCorrupted):
        return "corrupt"
    if isinstance(exc, ConnectionLost):
        return "connection-lost"
    if isinstance(exc, ServerBusy):
        return "busy"
    if isinstance(exc, ServerClosed):
        return "closed"
    if isinstance(exc, TransportError):
        return "transport"
    return f"untyped:{type(exc).__name__}"


def _run_entry(
    entry: TraceEntry,
    spec: TopologySpec,
    seed: int,
    servers: list[tuple[str, int]],
) -> dict:
    """One authentication round; returns its outcome record."""
    host, port = servers[entry.client_index % len(servers)]
    shim = build_shim(spec.wan_profile, seed, link_index=entry.index)
    transport = SocketTransport(host, port, shim=shim)
    _client_id, device, mask = build_client_device(
        seed, entry.client_index, spec.num_cells, entry.shell_depth
    )
    client = NetworkClient(
        device,
        transport,
        reference_mask=mask,
        retry_policy=RetryPolicy(
            max_attempts=4,
            base_backoff_seconds=0.05,
            max_backoff_seconds=0.5,
            jitter_fraction=0.3,
        ),
        rng=np.random.default_rng((seed, entry.index, 0xBACC0FF)),
        deadline_seconds=entry.deadline_seconds,
        tenant_id=entry.tenant,
    )
    record = {
        "index": entry.index,
        "client_id": entry.client_id,
        "tenant": entry.tenant,
        "shell_depth": entry.shell_depth,
        "deadline_seconds": entry.deadline_seconds,
    }
    start = time.monotonic()
    try:
        result = client.authenticate(RemoteCAServer(transport))
    except BaseException as exc:
        outcome = classify_failure(exc)
        record["outcome"] = outcome
        if outcome.startswith("untyped:"):
            record["traceback"] = traceback.format_exc()
    else:
        if result.authenticated:
            record["outcome"] = "authenticated"
        elif result.timed_out:
            record["outcome"] = "timed-out"
        else:
            record["outcome"] = "denied"
        record["distance"] = result.distance
    finally:
        record["latency_seconds"] = time.monotonic() - start
        record["attempts"] = client.last_attempts
        record["wan_faults"] = len(shim.fault_log)
        transport.close()
    return record


def run_loadgen(
    spec: TopologySpec,
    seed: int,
    servers: list[tuple[str, int]],
    requests: int,
    duration_seconds: float,
    loadgen_index: int = 0,
    num_loadgens: int = 1,
    time_scale: float = 1.0,
) -> dict:
    """Replay this process's slice of the trace; returns the result doc.

    ``time_scale`` compresses or stretches arrival offsets (the trace is
    shaped for ``duration_seconds``; scale 0 fires everything at once).
    """
    trace = generate_trace(spec, seed, requests, duration_seconds)
    owned = [
        e
        for e in trace.entries
        if e.client_index % num_loadgens == loadgen_index
    ]
    records: list[dict] = []
    records_lock = threading.Lock()
    # One physical device cannot run two authentications at once (and
    # the server rejects duplicate in-flight client ids as busy), so
    # entries for the same fleet slot serialize on a per-slot lock.
    # Slots are partitioned across load generators, so this is global.
    slot_locks = {e.client_index: threading.Lock() for e in owned}
    start = time.monotonic()
    with ThreadPoolExecutor(max_workers=_MAX_IN_FLIGHT) as pool:

        def fire(entry: TraceEntry) -> None:
            with slot_locks[entry.client_index]:
                record = _run_entry(entry, spec, seed, servers)
            with records_lock:
                records.append(record)

        for entry in owned:
            due = start + entry.offset_seconds * time_scale
            delay = due - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            pool.submit(fire, entry)
    records.sort(key=lambda r: r["index"])
    outcomes: dict[str, int] = {}
    for record in records:
        key = record["outcome"]
        outcomes[key] = outcomes.get(key, 0) + 1
    return {
        "loadgen_index": loadgen_index,
        "profile": spec.wan_profile,
        "seed": seed,
        "entries_owned": len(owned),
        "wall_seconds": time.monotonic() - start,
        "outcomes": dict(sorted(outcomes.items())),
        "records": records,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.deploy.loadgen",
        description="one load-generator process of a deployment storm",
    )
    parser.add_argument("--spec", required=True, help="TopologySpec JSON")
    parser.add_argument(
        "--server",
        action="append",
        required=True,
        metavar="HOST:PORT",
        help="server address (repeat, one per server process)",
    )
    parser.add_argument("--seed", type=int, required=True)
    parser.add_argument("--requests", type=int, required=True)
    parser.add_argument("--duration", type=float, required=True)
    parser.add_argument("--loadgen-index", type=int, default=0)
    parser.add_argument("--num-loadgens", type=int, default=1)
    parser.add_argument("--time-scale", type=float, default=1.0)
    parser.add_argument("--output", required=True)
    args = parser.parse_args(argv)

    spec = spec_from_json(args.spec)
    servers = []
    for token in args.server:
        host, _, port = token.rpartition(":")
        servers.append((host, int(port)))
    result = run_loadgen(
        spec,
        args.seed,
        servers,
        requests=args.requests,
        duration_seconds=args.duration,
        loadgen_index=args.loadgen_index,
        num_loadgens=args.num_loadgens,
        time_scale=args.time_scale,
    )
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
    print(f"LOADGEN-DONE {args.output}", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
