"""Trace-driven load generation.

A deployment storm should not hit the servers with a uniform drip of
identical requests — production authentication traffic is bursty in time
and skewed in cost. The generator here produces a deterministic trace
with two shaped axes:

* **Heavy-tailed shell depths.** The Hamming distance the server must
  search to is drawn from a Zipf-like law, ``P(d) ∝ (d + 1)^-alpha`` over
  ``0..max_distance``: most reads are near-clean (cheap shells), a small
  fraction land at the deepest shell, which dominates server cost — the
  same skew the paper's shell-size table implies for real PUF noise.
* **Diurnal arrivals.** Arrival times come from inverse-CDF sampling of
  a sinusoidal intensity — one full "day" compressed into the storm
  window, so the servers see a trough, a ramp, and a peak rather than a
  constant rate.

The trace is pure data, derived only from ``(topology, seed, requests,
duration)`` — every load-generator process regenerates it independently
and takes the slice of clients it owns, so no trace bytes ever cross a
process boundary.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.deploy.enrollment import client_identity, tenant_for
from repro.deploy.topology import TopologySpec

__all__ = ["TraceEntry", "LoadTrace", "generate_trace"]

#: Zipf exponent for shell depths; 1.4 gives ~55% depth-0 traffic with a
#: persistent deep-shell tail at max_distance=2..3.
DEPTH_ALPHA = 1.4
#: Fraction of the day-curve's rate that survives in the trough.
DIURNAL_FLOOR = 0.25
#: Deadline tiers as multiples of the topology's per-search time budget:
#: most requests are patient, a tight minority exercises deadline sheds.
_DEADLINE_TIERS = (0.5, 2.0, 4.0)
_DEADLINE_WEIGHTS = (0.1, 0.3, 0.6)


@dataclass(frozen=True)
class TraceEntry:
    """One authentication request a load generator will issue."""

    index: int
    #: Fleet slot — names the client identity, PUF seed, and tenant.
    client_index: int
    #: Seconds after storm start this request fires.
    offset_seconds: float
    #: Planted Hamming distance for the PUF read (search cost knob).
    shell_depth: int
    #: Client-declared deadline shipped with the digest submission.
    deadline_seconds: float
    tenant: str

    @property
    def client_id(self) -> str:
        return client_identity(self.client_index)


@dataclass(frozen=True)
class LoadTrace:
    """A full storm's worth of requests, sorted by arrival time."""

    entries: tuple[TraceEntry, ...]
    duration_seconds: float
    seed: int

    def for_slots(self, slots: set[int] | frozenset[int]) -> tuple[TraceEntry, ...]:
        """The slice of the trace one load-generator process owns."""
        return tuple(e for e in self.entries if e.client_index in slots)

    def depth_histogram(self) -> dict[int, int]:
        counts: dict[int, int] = {}
        for entry in self.entries:
            counts[entry.shell_depth] = counts.get(entry.shell_depth, 0) + 1
        return dict(sorted(counts.items()))


def _diurnal_offsets(
    rng: np.random.Generator, count: int, duration: float
) -> np.ndarray:
    """Arrival offsets via inverse-CDF sampling of a one-day sine curve.

    Intensity ``λ(t) = floor + (1 - floor) * (1 - cos(2πt/D)) / 2`` — a
    trough at t=0 and t=D, peak at t=D/2. The cumulative intensity has a
    closed form, but inverting it does not, so invert numerically on a
    fine grid (the grid error is microseconds at storm scale).
    """
    grid = np.linspace(0.0, duration, 4096)
    lam = DIURNAL_FLOOR + (1.0 - DIURNAL_FLOOR) * (
        1.0 - np.cos(2.0 * np.pi * grid / duration)
    ) / 2.0
    cumulative = np.concatenate(([0.0], np.cumsum((lam[1:] + lam[:-1]) / 2.0)))
    cumulative /= cumulative[-1]
    draws = rng.random(count)
    offsets = np.interp(draws, cumulative, grid)
    offsets.sort()
    return offsets


def _heavy_tailed_depths(
    rng: np.random.Generator, count: int, max_distance: int
) -> np.ndarray:
    depths = np.arange(max_distance + 1)
    weights = (depths + 1.0) ** (-DEPTH_ALPHA)
    weights /= weights.sum()
    return rng.choice(depths, size=count, p=weights)


def generate_trace(
    topology: TopologySpec,
    seed: int,
    requests: int,
    duration_seconds: float,
) -> LoadTrace:
    """The deterministic load trace for one storm.

    Every process that calls this with the same arguments gets the
    byte-identical trace; the RNG is keyed off the storm seed alone so
    the trace is independent of WAN-profile fault draws.
    """
    if requests < 1:
        raise ValueError("requests must be positive")
    if duration_seconds <= 0:
        raise ValueError("duration_seconds must be positive")
    rng = np.random.default_rng((seed, 0xD1A1))
    offsets = _diurnal_offsets(rng, requests, duration_seconds)
    depths = _heavy_tailed_depths(rng, requests, topology.max_distance)
    slots = rng.integers(0, topology.clients, size=requests)
    tiers = rng.choice(
        len(_DEADLINE_TIERS), size=requests, p=_DEADLINE_WEIGHTS
    )
    entries = tuple(
        TraceEntry(
            index=i,
            client_index=int(slots[i]),
            offset_seconds=float(offsets[i]),
            shell_depth=int(depths[i]),
            deadline_seconds=topology.time_budget
            * _DEADLINE_TIERS[int(tiers[i])],
            tenant=tenant_for(int(slots[i]), topology.tenants),
        )
        for i in range(requests)
    )
    return LoadTrace(
        entries=entries, duration_seconds=duration_seconds, seed=seed
    )
