"""Declarative deployment topologies.

A :class:`TopologySpec` says *what* to stand up — how many
:class:`~repro.net.concurrent.ConcurrentCAServer` processes, which fleet
devices each one drives, the WAN profile between clients and servers,
and the engine/protocol parameters — without saying *how*; the process
supervisor (:mod:`repro.deploy.supervisor`) and storm runner
(:mod:`repro.deploy.storm`) turn one into real OS processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.deploy.wan import WAN_PROFILES

__all__ = ["TopologySpec", "ENGINE_MODES"]

#: How a server process serves searches: ``fleet`` (multi-device
#: continuous batching — the default), ``sched`` (single-device
#: continuous batching), ``fifo`` (bounded worker pool, the PR 1 front
#: door).
ENGINE_MODES = ("fleet", "sched", "fifo")


@dataclass(frozen=True)
class TopologySpec:
    """One deployment: N server processes × M devices × a WAN profile."""

    #: Number of ConcurrentCAServer OS processes.
    servers: int = 1
    #: Fleet device tokens per server (``fleet`` mode); e.g.
    #: ``("host", "host")`` or ``("host", "flaky-apu")``.
    devices: tuple[str, ...] = ("host", "host")
    #: Name in :data:`~repro.deploy.wan.WAN_PROFILES`.
    wan_profile: str = "lan"
    engine: str = "fleet"
    hash_name: str = "sha1"
    max_distance: int = 2
    num_cells: int = 2048
    batch_size: int = 8192
    #: FIFO-mode worker threads / admission queue bound per server.
    workers: int = 2
    max_queue: int = 64
    #: Protocol time threshold T per search.
    time_budget: float = 5.0
    #: Enrolled client identities (shared across all servers — every
    #: server enrolls the full deterministic fleet, so any client can be
    #: routed to any server).
    clients: int = 8
    #: Tenant namespaces clients are spread over round-robin; empty
    #: means everything rides the default tenant.
    tenants: tuple[str, ...] = field(default_factory=tuple)
    #: Durability of each server's enrollment store: ``""`` (empty, the
    #: default) keeps the pre-durability in-memory store; otherwise an
    #: fsync-policy token for the WAL-backed store — ``always``,
    #: ``interval[:seconds]``, or ``none`` (WAL without fsync, the lossy
    #: baseline the recovery benchmark contrasts against). A durable
    #: server also needs a ``--data-dir`` at spawn time.
    durability: str = ""

    def __post_init__(self):
        if self.servers < 1:
            raise ValueError("servers must be positive")
        if not self.devices:
            raise ValueError("devices must not be empty")
        if self.engine not in ENGINE_MODES:
            raise ValueError(
                f"engine must be one of {ENGINE_MODES}, got {self.engine!r}"
            )
        if self.wan_profile not in WAN_PROFILES:
            raise ValueError(
                f"unknown WAN profile {self.wan_profile!r}; "
                f"choices: {sorted(WAN_PROFILES)}"
            )
        if self.max_distance < 1:
            raise ValueError("max_distance must be positive")
        if self.clients < 1:
            raise ValueError("clients must be positive")
        if self.time_budget <= 0:
            raise ValueError("time_budget must be positive")
        if self.workers < 1 or self.max_queue < 1:
            raise ValueError("workers and max_queue must be positive")
        if self.durability:
            from repro.durability.wal import FsyncPolicy

            FsyncPolicy.parse(self.durability)  # raises on a bad token

    def with_profile(self, wan_profile: str) -> "TopologySpec":
        """The same topology under a different WAN profile."""
        return replace(self, wan_profile=wan_profile)

    def describe(self) -> str:
        """One line for reports: servers × devices × profile × engine."""
        devices = ",".join(self.devices)
        wal = f", wal={self.durability}" if self.durability else ""
        return (
            f"{self.servers} server(s) x [{devices}] "
            f"over {self.wan_profile} ({self.engine}:{self.hash_name}, "
            f"d<={self.max_distance}, T={self.time_budget:g}s, "
            f"{self.clients} clients{wal})"
        )
