"""Noisy-neighbor tenant storms for the tenancy CLI, bench, and CI gate.

The tenancy claim is an *isolation* story: an in-quota tenant's tail
latency should survive a neighbor slamming the same CA at many times its
admission budget, because the neighbor's excess is refused at the front
door with a typed ``tenant_quota`` shed instead of queueing ahead of
everyone else. Both the ``repro tenants`` CLI and
``benchmarks/bench_tenancy.py`` need the same apparatus to show that —
a deterministic two-tenant fleet, a victim-alone baseline, a storm with
quotas enforced, and a counterfactual storm with the quota removed — so
it lives here and the entry points cannot drift apart.

Three phases, same planted requests throughout:

* **baseline** — the victim tenant alone: its no-contention tail.
* **storm** — the aggressor fleet (sized at ~10x the aggressor's token
  bucket) interleaved with the victim; quotas enforced.
* **unprotected** — the identical storm with the aggressor's quota
  removed: the damage the token bucket exists to prevent.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro._bitutils import SEED_BITS, flip_bits
from repro.analysis.metrics import percentile
from repro.core.authentication import (
    CertificateAuthority,
    RegistrationAuthority,
)
from repro.core.salting import HashChainSalt
from repro.core.search import RBCSearchService
from repro.hashes.registry import get_hash
from repro.keygen.interface import get_keygen
from repro.directory.sharded import ShardedEnrollmentDirectory
from repro.net.concurrent import ConcurrentCAServer
from repro.puf.model import SRAMPuf
from repro.puf.ternary import enroll_with_masking
from repro.runtime.executor import BatchSearchExecutor
from repro.sched.errors import SHED_TENANT_QUOTA, RequestShed
from repro.tenancy.context import TenantContext, TenantQuota
from repro.tenancy.registry import TenantRegistry

__all__ = [
    "VICTIM_TENANT",
    "AGGRESSOR_TENANT",
    "TenantRequest",
    "TenantOutcome",
    "build_tenant_authority",
    "plant_requests",
    "run_requests",
    "summarize_outcomes",
    "run_noisy_neighbor",
    "evaluate_gates",
]

#: The in-quota tenant whose tail latency the storm must not ruin.
VICTIM_TENANT = "victim"
#: The neighbor that submits far past its admission budget.
AGGRESSOR_TENANT = "aggressor"

#: Where each tenant's answers are planted. Victim requests are the
#: interactive (shallow) class the isolation claim is about; aggressor
#: requests are deliberately *cheap* so any victim damage in the
#: unprotected phase is volume-driven — exactly what a token bucket
#: can and should absorb.
VICTIM_DISTANCE = 2
AGGRESSOR_DISTANCE = 1


@dataclass(frozen=True)
class TenantRequest:
    """One tenant-tagged authentication request in the storm."""

    tenant_id: str
    client_id: str
    digest: bytes
    planted_distance: int
    deadline_seconds: float | None = None


@dataclass(frozen=True)
class TenantOutcome:
    """What the front door and the search did with one request."""

    tenant_id: str
    client_id: str
    latency_seconds: float
    authenticated: bool
    shed: bool
    shed_reason: str = ""


def build_tenant_authority(
    victims: int,
    aggressors: int,
    hash_name: str = "sha1",
    max_distance: int = 2,
    batch_size: int = 8192,
    time_budget: float = 5.0,
    seed: int = 0,
) -> CertificateAuthority:
    """A CA with ``victims`` + ``aggressors`` clients enrolled per tenant.

    Enrollment records are installed under their tenant's namespace in a
    sharded directory, so the storm exercises the same namespaced-key
    path production traffic uses — and the directory's hot cache keeps
    the per-request image decrypt off the serving path once
    :func:`plant_requests` has touched every record. Deterministic in
    ``seed``.
    """
    if victims < 1 or aggressors < 1:
        raise ValueError("victims and aggressors must be positive")
    authority = CertificateAuthority(
        search_service=RBCSearchService(
            BatchSearchExecutor(hash_name, batch_size=batch_size),
            max_distance=max_distance,
            time_threshold=time_budget,
        ),
        salt=HashChainSalt(),
        keygen=get_keygen("aes-128"),
        registration_authority=RegistrationAuthority(),
        image_db=ShardedEnrollmentDirectory(
            b"tenancy-storm-mk", shards=4, replication=2
        ),
        hash_name=hash_name,
    )
    fleets = (
        (VICTIM_TENANT, victims),
        (AGGRESSOR_TENANT, aggressors),
    )
    index = 0
    for tenant_id, count in fleets:
        for i in range(count):
            puf = SRAMPuf(
                num_cells=2048, stable_error=0.001, seed=seed * 7919 + index
            )
            mask = enroll_with_masking(
                puf, 0, 2048, reads=8, instability_threshold=0.05
            )
            authority.enroll(f"{tenant_id}-{i:04d}", mask, tenant_id=tenant_id)
            index += 1
    return authority


def plant_requests(
    authority: CertificateAuthority,
    tenant_id: str,
    count: int,
    distance: int,
    seed: int = 0,
) -> list[TenantRequest]:
    """Requests whose answers lie ``distance`` bit flips from S_init."""
    algo = get_hash(authority.hash_name)
    rng = np.random.default_rng(seed)
    requests = []
    for i in range(count):
        client_id = f"{tenant_id}-{i:04d}"
        base_seed = authority.enrolled_seed(client_id, tenant_id=tenant_id)
        flips = rng.choice(SEED_BITS, size=distance, replace=False)
        digest = algo.hash_seed(flip_bits(base_seed, [int(b) for b in flips]))
        requests.append(
            TenantRequest(
                tenant_id=tenant_id,
                client_id=client_id,
                digest=digest,
                planted_distance=distance,
            )
        )
    return requests


def run_requests(
    server: ConcurrentCAServer,
    requests: list[TenantRequest],
    timeout: float = 120.0,
) -> list[TenantOutcome]:
    """Submit the fleet back-to-back; per-request submit-to-settle latency.

    Completion instants are stamped by each future's done-callback (on
    the worker that settles it), so collection order cannot inflate a
    fast request's measured latency.
    """
    settled: dict[int, float] = {}

    def stamp(index: int):
        def callback(_future) -> None:
            settled[index] = time.perf_counter()

        return callback

    admitted: list[tuple[int, TenantRequest, float, object]] = []
    outcomes: list[TenantOutcome] = []
    for index, request in enumerate(requests):
        started = time.perf_counter()
        try:
            future = server.submit(
                request.client_id,
                request.digest,
                deadline_seconds=request.deadline_seconds,
                tenant_id=request.tenant_id,
            )
        except RequestShed as exc:
            outcomes.append(
                TenantOutcome(
                    tenant_id=request.tenant_id,
                    client_id=request.client_id,
                    latency_seconds=time.perf_counter() - started,
                    authenticated=False,
                    shed=True,
                    shed_reason=exc.reason,
                )
            )
            continue
        future.add_done_callback(stamp(index))
        admitted.append((index, request, started, future))
    for index, request, started, future in admitted:
        try:
            result = future.result(timeout=timeout)
        except RequestShed as exc:
            outcomes.append(
                TenantOutcome(
                    tenant_id=request.tenant_id,
                    client_id=request.client_id,
                    latency_seconds=settled.get(index, started) - started,
                    authenticated=False,
                    shed=True,
                    shed_reason=exc.reason,
                )
            )
            continue
        outcomes.append(
            TenantOutcome(
                tenant_id=request.tenant_id,
                client_id=request.client_id,
                latency_seconds=settled[index] - started,
                authenticated=result.authenticated,
                shed=False,
            )
        )
    return outcomes


def summarize_outcomes(outcomes: list[TenantOutcome]) -> dict:
    """Per-tenant served-latency percentiles, outcome counts, shed reasons."""
    summary: dict[str, dict] = {}
    for tenant_id in sorted({o.tenant_id for o in outcomes}):
        group = [o for o in outcomes if o.tenant_id == tenant_id]
        served = [o for o in group if not o.shed]
        reasons: dict[str, int] = {}
        for outcome in group:
            if outcome.shed:
                reasons[outcome.shed_reason] = (
                    reasons.get(outcome.shed_reason, 0) + 1
                )
        stats = {
            "count": len(group),
            "served": len(served),
            "authenticated": sum(1 for o in served if o.authenticated),
            "shed": len(group) - len(served),
            "shed_reasons": reasons,
        }
        if served:
            latencies = [o.latency_seconds for o in served]
            stats.update(
                p50_seconds=round(percentile(latencies, 50), 6),
                p95_seconds=round(percentile(latencies, 95), 6),
                p99_seconds=round(percentile(latencies, 99), 6),
                max_seconds=round(max(latencies), 6),
            )
        summary[tenant_id] = stats
    return summary


def _interleave(
    victims: list[TenantRequest], aggressors: list[TenantRequest]
) -> list[TenantRequest]:
    """Aggressor-heavy round-robin: every victim arrives mid-storm."""
    per_victim = max(1, len(aggressors) // len(victims))
    storm: list[TenantRequest] = []
    cursor = 0
    for victim in victims:
        storm.extend(aggressors[cursor : cursor + per_victim])
        cursor += per_victim
        storm.append(victim)
    storm.extend(aggressors[cursor:])
    return storm


def run_noisy_neighbor(
    hash_name: str = "sha1",
    victims: int = 8,
    aggressors: int = 20,
    aggressor_rate: float = 1.0,
    aggressor_burst: float = 1.0,
    workers: int = 2,
    batch_size: int = 8192,
    time_budget: float = 5.0,
    seed: int = 0,
) -> dict:
    """Run all three phases against one enrolled CA; return the record.

    The aggressor fleet arrives in one burst, so ``aggressors`` versus
    ``aggressor_burst`` sets the overload factor — the defaults submit
    20 requests against a one-token bucket, 20x the budget. The victim
    tenant carries no quota (in-quota by construction) and a higher
    fair-share weight, the aggressor a token bucket of
    ``aggressor_rate``/s with ``aggressor_burst`` tokens of headroom.
    """
    authority = build_tenant_authority(
        victims,
        aggressors,
        hash_name=hash_name,
        max_distance=VICTIM_DISTANCE,
        batch_size=batch_size,
        time_budget=time_budget,
        seed=seed,
    )
    victim_requests = plant_requests(
        authority, VICTIM_TENANT, victims, VICTIM_DISTANCE, seed=seed + 1
    )
    aggressor_requests = plant_requests(
        authority, AGGRESSOR_TENANT, aggressors, AGGRESSOR_DISTANCE,
        seed=seed + 2,
    )
    storm_order = _interleave(victim_requests, aggressor_requests)

    def quota_registry() -> TenantRegistry:
        # Fresh per phase: token buckets start full each time.
        return TenantRegistry(
            tenants=(
                TenantContext(VICTIM_TENANT, weight=4.0),
                TenantContext(
                    AGGRESSOR_TENANT,
                    weight=1.0,
                    quota=TenantQuota(
                        lookup_rate=aggressor_rate, burst=aggressor_burst
                    ),
                ),
            )
        )

    def open_registry() -> TenantRegistry:
        return TenantRegistry(
            tenants=(
                TenantContext(VICTIM_TENANT, weight=4.0),
                TenantContext(AGGRESSOR_TENANT, weight=1.0),
            )
        )

    phases: dict[str, dict] = {}
    storm_metrics: dict = {}
    storm_tenants: dict = {}
    for name, registry, fleet in (
        ("baseline", quota_registry(), victim_requests),
        ("storm", quota_registry(), storm_order),
        ("unprotected", open_registry(), storm_order),
    ):
        with ConcurrentCAServer(
            authority, workers=workers, max_queue=256, tenants=registry
        ) as server:
            outcomes = run_requests(server, fleet)
        phases[name] = summarize_outcomes(outcomes)
        if name == "storm":
            storm_metrics = server.metrics.snapshot()
            storm_tenants = server.metrics.tenant_snapshot()

    baseline = phases["baseline"][VICTIM_TENANT]
    storm_victim = phases["storm"][VICTIM_TENANT]
    storm_aggressor = phases["storm"][AGGRESSOR_TENANT]
    unprotected_victim = phases["unprotected"][VICTIM_TENANT]
    baseline_p99 = baseline.get("p99_seconds", 0.0)
    storm_p99 = storm_victim.get("p99_seconds", 0.0)
    return {
        "config": {
            "hash_name": hash_name,
            "victims": victims,
            "aggressors": aggressors,
            "aggressor_rate": aggressor_rate,
            "aggressor_burst": aggressor_burst,
            "workers": workers,
            "batch_size": batch_size,
            "time_budget": time_budget,
            "seed": seed,
        },
        "baseline": phases["baseline"],
        "storm": phases["storm"],
        "unprotected": phases["unprotected"],
        "victim_p99_baseline_seconds": baseline_p99,
        "victim_p99_storm_seconds": storm_p99,
        "victim_p99_unprotected_seconds": unprotected_victim.get(
            "p99_seconds", 0.0
        ),
        "victim_p99_ratio": (
            round(storm_p99 / baseline_p99, 4) if baseline_p99 > 0 else None
        ),
        "aggressor_admitted": storm_aggressor["served"],
        "aggressor_shed": storm_aggressor["shed"],
        "aggressor_shed_reasons": storm_aggressor["shed_reasons"],
        "server": {
            "storm_metrics": storm_metrics,
            "storm_tenants": storm_tenants,
        },
    }


def evaluate_gates(
    record: dict,
    ratio_limit: float = 1.25,
    absolute_slack_seconds: float = 0.05,
) -> list[str]:
    """The bench/CI acceptance gates; empty list means all passed.

    The victim-tail gate allows ``absolute_slack_seconds`` on top of the
    ratio: phase p99s here are a few device batches, so a single
    scheduling hiccup on a busy CI host is a large *relative* error while
    the isolation claim is about orders of magnitude.
    """
    failures = []
    storm_victim = record["storm"][VICTIM_TENANT]
    if storm_victim["shed"] != 0:
        failures.append(
            f"victim was shed {storm_victim['shed']}x during the storm"
        )
    if storm_victim["authenticated"] != storm_victim["count"]:
        failures.append(
            "victim authentications failed under storm: "
            f"{storm_victim['authenticated']}/{storm_victim['count']}"
        )
    if record["aggressor_shed"] == 0:
        failures.append("aggressor was never shed — storm did not overload")
    bad_reasons = set(record["aggressor_shed_reasons"]) - {SHED_TENANT_QUOTA}
    if bad_reasons:
        failures.append(
            f"aggressor rejections not typed {SHED_TENANT_QUOTA!r}: "
            f"{sorted(bad_reasons)}"
        )
    baseline_p99 = record["victim_p99_baseline_seconds"]
    storm_p99 = record["victim_p99_storm_seconds"]
    allowed = max(
        baseline_p99 * ratio_limit, baseline_p99 + absolute_slack_seconds
    )
    if storm_p99 > allowed:
        failures.append(
            f"victim p99 degraded {storm_p99:.3f}s vs baseline "
            f"{baseline_p99:.3f}s (allowed {allowed:.3f}s)"
        )
    return failures
