"""Tenant identity: the first-class field the serving stack threads.

A *tenant* is one independent request stream — a product, a customer, a
device fleet — sharing the CA with every other tenant. Until this module
existed the stack treated all clients as one anonymous pool; everything
tenant-shaped starts from the two values defined here:

* :class:`TenantContext` — who a request belongs to (tenant id), how much
  of the device it deserves (weight), and what it is allowed to consume
  (:class:`TenantQuota`).
* the **namespaced key** — where a tenant's records live. Client ids are
  namespaced per tenant on the existing directory hash ring by prefixing
  them (``gold::device-7``); the reserved :data:`DEFAULT_TENANT` maps to
  the *bare* client id so every record enrolled before tenancy existed,
  and every legacy client that never sends a tenant, keeps resolving to
  exactly the same key as before.

Nothing in this module imports from the rest of :mod:`repro` — tenant
identity sits at the bottom of the dependency graph so the net, sched,
directory, and serving layers can all import it freely.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

__all__ = [
    "DEFAULT_TENANT",
    "TENANT_SEPARATOR",
    "TenantQuota",
    "TenantContext",
    "namespaced_key",
    "split_key",
    "tenant_of_key",
]

#: The tenant legacy (untenanted) traffic rides: no prefix, no quotas
#: unless an operator registers some.
DEFAULT_TENANT = "default"

#: Separator between the tenant prefix and the client id in a namespaced
#: directory key. Forbidden inside tenant ids, so splitting is exact.
TENANT_SEPARATOR = "::"

#: Tenant ids are operator-chosen labels that travel on the wire and
#: inside directory keys; keep them to a safe, unambiguous charset.
_TENANT_ID_RE = re.compile(r"^[a-z0-9][a-z0-9._-]{0,63}$")


def validate_tenant_id(tenant_id: str) -> str:
    """Check a tenant id's charset/length; returns it unchanged."""
    if not _TENANT_ID_RE.match(tenant_id):
        raise ValueError(
            f"invalid tenant id {tenant_id!r}: must match "
            "[a-z0-9][a-z0-9._-]{0,63}"
        )
    return tenant_id


@dataclass(frozen=True)
class TenantQuota:
    """What one tenant may consume; ``None`` fields are unlimited.

    ``lookup_rate`` is the tenant's sustained admission budget in
    authentication lookups per second, enforced as a token bucket at
    admission (``burst`` tokens of headroom, default one second's worth).
    ``max_enrollments`` caps how many distinct client records the tenant
    may install in the enrollment directory.
    """

    lookup_rate: float | None = None
    burst: float | None = None
    max_enrollments: int | None = None

    def __post_init__(self) -> None:
        if self.lookup_rate is not None and self.lookup_rate <= 0:
            raise ValueError("lookup_rate must be positive (or None)")
        if self.burst is not None and self.burst < 1:
            raise ValueError("burst must be at least 1 (or None)")
        if self.max_enrollments is not None and self.max_enrollments < 0:
            raise ValueError("max_enrollments must be non-negative (or None)")

    @property
    def bucket_capacity(self) -> float | None:
        """Token-bucket capacity: explicit burst, else ~1s of rate."""
        if self.lookup_rate is None:
            return None
        if self.burst is not None:
            return self.burst
        return max(1.0, self.lookup_rate)


@dataclass(frozen=True)
class TenantContext:
    """One tenant's identity, device-share weight, and quota config."""

    tenant_id: str
    #: Relative fair-share weight in the scheduler's lanes: with tenants
    #: A (weight 3) and B (weight 1) both backlogged, A is entitled to
    #: ~3/4 of the device batches before the policy deprioritizes it.
    weight: float = 1.0
    quota: TenantQuota = field(default_factory=TenantQuota)

    def __post_init__(self) -> None:
        validate_tenant_id(self.tenant_id)
        if self.weight <= 0:
            raise ValueError("weight must be positive")

    @property
    def is_default(self) -> bool:
        return self.tenant_id == DEFAULT_TENANT


def namespaced_key(tenant_id: str | None, client_id: str) -> str:
    """The directory key a tenant's client record lives under.

    The default tenant (``None`` or ``""`` included) maps to the bare
    client id — byte-for-byte what the pre-tenancy stack used — so
    legacy enrollments and untenanted clients keep resolving unchanged.
    Any other tenant gets an exact, splittable prefix on the same hash
    ring.
    """
    if TENANT_SEPARATOR in client_id:
        raise ValueError(
            f"client id {client_id!r} may not contain {TENANT_SEPARATOR!r}"
        )
    if not tenant_id or tenant_id == DEFAULT_TENANT:
        return client_id
    validate_tenant_id(tenant_id)
    return f"{tenant_id}{TENANT_SEPARATOR}{client_id}"


def split_key(key: str) -> tuple[str, str]:
    """``(tenant_id, client_id)`` for a directory key (bare = default)."""
    if TENANT_SEPARATOR in key:
        tenant_id, client_id = key.split(TENANT_SEPARATOR, 1)
        return tenant_id, client_id
    return DEFAULT_TENANT, key


def tenant_of_key(key: str) -> str:
    """Which tenant owns a directory key."""
    return split_key(key)[0]
