"""Per-tenant serving counters: the multi-tenant half of ServerMetrics.

One ledger rides inside :class:`~repro.net.concurrent.ServerMetrics`;
every admission, completion, and shed is attributed to the tenant it
belonged to. Latencies keep a bounded reservoir of the most recent
observations per tenant, enough for the p50/p99 the noisy-neighbor
bench and the ``repro tenants`` CLI report.
"""

from __future__ import annotations

import threading
from collections import deque

from repro.analysis.metrics import percentile

__all__ = ["TenantLedger"]

#: Most recent latency observations kept per tenant for percentiles.
_LATENCY_WINDOW = 1024


class _TenantCounters:
    __slots__ = (
        "submitted",
        "completed",
        "authenticated",
        "failed",
        "shed",
        "quota_hits",
        "directory_lookups",
        "search_seconds",
        "latencies",
    )

    def __init__(self) -> None:
        self.submitted = 0
        self.completed = 0
        self.authenticated = 0
        self.failed = 0
        self.shed = 0
        #: Sheds caused specifically by this tenant's own quota.
        self.quota_hits = 0
        #: Enrollment-directory lookups attributed to this tenant.
        self.directory_lookups = 0
        self.search_seconds = 0.0
        self.latencies: deque[float] = deque(maxlen=_LATENCY_WINDOW)


class TenantLedger:
    """Thread-safe per-tenant counters with one atomic write path."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._tenants: dict[str, _TenantCounters] = {}

    def record(
        self,
        tenant_id: str,
        *,
        submitted: int = 0,
        completed: int = 0,
        authenticated: int = 0,
        failed: int = 0,
        shed: int = 0,
        quota_hits: int = 0,
        directory_lookups: int = 0,
        search_seconds: float = 0.0,
        latency_seconds: float | None = None,
    ) -> None:
        """Atomically attribute counters to one tenant."""
        with self._lock:
            counters = self._tenants.get(tenant_id)
            if counters is None:
                counters = self._tenants[tenant_id] = _TenantCounters()
            counters.submitted += submitted
            counters.completed += completed
            counters.authenticated += authenticated
            counters.failed += failed
            counters.shed += shed
            counters.quota_hits += quota_hits
            counters.directory_lookups += directory_lookups
            counters.search_seconds += search_seconds
            if latency_seconds is not None:
                counters.latencies.append(latency_seconds)

    def tenant_ids(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._tenants))

    def snapshot(self) -> dict[str, dict[str, float]]:
        """A consistent per-tenant copy, percentiles included."""
        with self._lock:
            report: dict[str, dict[str, float]] = {}
            for tenant_id in sorted(self._tenants):
                counters = self._tenants[tenant_id]
                entry: dict[str, float] = {
                    "submitted": counters.submitted,
                    "completed": counters.completed,
                    "authenticated": counters.authenticated,
                    "failed": counters.failed,
                    "shed": counters.shed,
                    "quota_hits": counters.quota_hits,
                    "directory_lookups": counters.directory_lookups,
                    "search_seconds": counters.search_seconds,
                }
                if counters.latencies:
                    window = list(counters.latencies)
                    entry["p50_seconds"] = round(percentile(window, 50), 6)
                    entry["p99_seconds"] = round(percentile(window, 99), 6)
                report[tenant_id] = entry
            return report
