"""The tenant registry: resolution, admission budgets, fair-share weights.

One registry instance is shared by every layer that makes a
tenant-shaped decision — the serving front door resolves wire tenant ids
through it, the scheduler's admission policy charges its token buckets,
the lanes read its weights, and the enrollment directory checks its
enrollment caps. Sharing one object is what keeps those decisions
consistent: there is exactly one bucket per tenant no matter how many
layers consult it.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Iterable

from repro.tenancy.bucket import TokenBucket
from repro.tenancy.context import (
    DEFAULT_TENANT,
    TenantContext,
    TenantQuota,
)
from repro.tenancy.errors import UnknownTenant

__all__ = ["TenantRegistry"]


class TenantRegistry:
    """Registered tenants plus the default every legacy client rides."""

    def __init__(
        self,
        tenants: Iterable[TenantContext] = (),
        strict: bool = False,
        clock: Callable[[], float] = time.monotonic,
    ):
        #: With ``strict=True`` an unregistered tenant id is refused
        #: (:class:`UnknownTenant`) instead of falling back to the
        #: default tenant — multi-tenant deployments that require
        #: explicit onboarding set this.
        self.strict = strict
        self._clock = clock
        self._lock = threading.Lock()
        self._contexts: dict[str, TenantContext] = {}
        self._buckets: dict[str, TokenBucket] = {}
        for context in tenants:
            self.register(context)
        if DEFAULT_TENANT not in self._contexts:
            self.register(TenantContext(DEFAULT_TENANT))

    # -- membership -----------------------------------------------------

    def register(self, context: TenantContext) -> None:
        """Add (or replace) one tenant; its bucket resets on replace."""
        with self._lock:
            self._contexts[context.tenant_id] = context
            self._buckets.pop(context.tenant_id, None)
            rate = context.quota.lookup_rate
            capacity = context.quota.bucket_capacity
            if rate is not None and capacity is not None:
                self._buckets[context.tenant_id] = TokenBucket(
                    rate, capacity, clock=self._clock
                )

    def resolve(self, tenant_id: str | None) -> TenantContext:
        """The context a request with this wire tenant id runs under.

        ``None`` / ``""`` — a legacy client that never heard of tenancy
        — resolves to the default tenant. An unknown id resolves to the
        default too unless the registry is strict.
        """
        if not tenant_id:
            tenant_id = DEFAULT_TENANT
        with self._lock:
            context = self._contexts.get(tenant_id)
            if context is not None:
                return context
            if self.strict:
                raise UnknownTenant(tenant_id)
            return self._contexts[DEFAULT_TENANT]

    def contexts(self) -> tuple[TenantContext, ...]:
        """Registered tenants, default first then alphabetical."""
        with self._lock:
            rest = sorted(t for t in self._contexts if t != DEFAULT_TENANT)
            return tuple(
                self._contexts[t] for t in [DEFAULT_TENANT, *rest]
            )

    def __contains__(self, tenant_id: str) -> bool:
        with self._lock:
            return tenant_id in self._contexts

    # -- decisions ------------------------------------------------------

    def try_admit(self, tenant_id: str | None) -> bool:
        """Charge one lookup against the tenant's rate budget.

        True when the tenant has no rate quota or its bucket still holds
        a token; False when the budget is exhausted — the caller sheds
        with ``SHED_TENANT_QUOTA``. Unknown tenants charge the bucket of
        whatever :meth:`resolve` maps them to.
        """
        context = self.resolve(tenant_id)
        with self._lock:
            bucket = self._buckets.get(context.tenant_id)
        if bucket is None:
            return True
        return bucket.try_acquire()

    def weight_of(self, tenant_id: str | None) -> float:
        """The tenant's fair-share weight (default tenant's if unknown)."""
        return self.resolve(tenant_id).weight

    def enrollment_cap(self, tenant_id: str | None) -> int | None:
        """Max directory records the tenant may install, or None."""
        return self.resolve(tenant_id).quota.max_enrollments

    # -- introspection --------------------------------------------------

    def snapshot(self) -> dict[str, dict[str, object]]:
        """Per-tenant config plus live bucket levels."""
        with self._lock:
            contexts = dict(self._contexts)
            buckets = dict(self._buckets)
        report: dict[str, dict[str, object]] = {}
        for tenant_id, context in sorted(contexts.items()):
            quota: TenantQuota = context.quota
            entry: dict[str, object] = {
                "weight": context.weight,
                "lookup_rate": quota.lookup_rate,
                "burst": quota.bucket_capacity,
                "max_enrollments": quota.max_enrollments,
            }
            bucket = buckets.get(tenant_id)
            if bucket is not None:
                entry["tokens_available"] = round(bucket.available, 3)
            report[tenant_id] = entry
        return report
