"""Typed tenancy failures.

Quota violations are *policy* outcomes, not bugs: the caller exceeded a
budget an operator configured. They carry the tenant and the budget that
tripped so serving layers can convert them into typed sheds (admission)
or refusals (enrollment) without string-matching.
"""

from __future__ import annotations

__all__ = ["TenancyError", "UnknownTenant", "TenantQuotaExceeded"]


class TenancyError(Exception):
    """Base class for tenancy-level failures."""


class UnknownTenant(TenancyError):
    """A strict registry refused an unregistered tenant id."""

    def __init__(self, tenant_id: str):
        super().__init__(f"unknown tenant {tenant_id!r}")
        self.tenant_id = tenant_id


class TenantQuotaExceeded(TenancyError):
    """A tenant hit one of its configured budgets; ``kind`` says which."""

    def __init__(self, tenant_id: str, kind: str, detail: str = ""):
        message = f"tenant {tenant_id!r} exceeded its {kind} quota"
        if detail:
            message += f": {detail}"
        super().__init__(message)
        self.tenant_id = tenant_id
        self.kind = kind
        self.detail = detail
