"""Multi-tenant identity, quotas, and fair share for the serving stack.

One tenant model threads through every serving layer:

* :mod:`repro.tenancy.context` — :class:`TenantContext` (id, fair-share
  weight, :class:`TenantQuota`) plus the ``tenant::client_id`` key
  namespacing the enrollment directory stores records under. The
  ``default`` tenant maps to bare client ids, so pre-tenancy
  enrollments and legacy clients keep working byte-identically.
* :mod:`repro.tenancy.bucket` — the token bucket behind per-tenant
  lookup-rate budgets.
* :mod:`repro.tenancy.registry` — :class:`TenantRegistry`, the one
  shared object every layer consults: the wire front door resolves
  tenant ids, admission charges buckets, lanes read weights, and the
  directory checks enrollment caps.
* :mod:`repro.tenancy.ledger` — :class:`TenantLedger`, per-tenant
  serving counters (submitted/shed/quota hits/latency percentiles).
* :mod:`repro.tenancy.workload` — the noisy-neighbor storm used by the
  tenancy benchmark and the smoke gate.
"""

from repro.tenancy.bucket import TokenBucket
from repro.tenancy.context import (
    DEFAULT_TENANT,
    TENANT_SEPARATOR,
    TenantContext,
    TenantQuota,
    namespaced_key,
    split_key,
    tenant_of_key,
    validate_tenant_id,
)
from repro.tenancy.errors import (
    TenancyError,
    TenantQuotaExceeded,
    UnknownTenant,
)
from repro.tenancy.ledger import TenantLedger
from repro.tenancy.registry import TenantRegistry

__all__ = [
    "DEFAULT_TENANT",
    "TENANT_SEPARATOR",
    "TenantContext",
    "TenantQuota",
    "TokenBucket",
    "TenantLedger",
    "TenantRegistry",
    "TenancyError",
    "TenantQuotaExceeded",
    "UnknownTenant",
    "namespaced_key",
    "split_key",
    "tenant_of_key",
    "validate_tenant_id",
]
