"""A thread-safe token bucket for per-tenant admission budgets.

The classic shape: ``capacity`` tokens, refilled continuously at
``rate`` tokens per second; an admission costs one token and is refused
when the bucket is dry. The clock is injectable so policy tests can
drive it deterministically without sleeping.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

__all__ = ["TokenBucket"]


class TokenBucket:
    """Continuous-refill token bucket; ``try_acquire`` never blocks."""

    def __init__(
        self,
        rate: float,
        capacity: float,
        clock: Callable[[], float] = time.monotonic,
    ):
        if rate <= 0:
            raise ValueError("rate must be positive")
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.rate = rate
        self.capacity = capacity
        self._clock = clock
        self._tokens = capacity
        self._refilled_at = clock()
        self._lock = threading.Lock()

    def _refill_locked(self, now: float) -> None:
        elapsed = now - self._refilled_at
        if elapsed > 0:
            self._tokens = min(
                self.capacity, self._tokens + elapsed * self.rate
            )
        self._refilled_at = now

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; False (and no debit) if not."""
        if tokens <= 0:
            raise ValueError("tokens must be positive")
        with self._lock:
            self._refill_locked(self._clock())
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True
            return False

    @property
    def available(self) -> float:
        """Tokens available right now (refilled to the current instant)."""
        with self._lock:
            self._refill_locked(self._clock())
            return self._tokens
