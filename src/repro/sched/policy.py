"""Admission control and lane ordering for the search scheduler.

Three decisions live here, kept as pure functions of explicit state so
they are unit-testable without threads or a device:

* **Admission** — refuse a request outright when the queue is full
  (``saturated``) or when, at the currently observed device throughput,
  its deadline cannot cover even the cheapest useful search — the
  distance<=1 shells (``deadline_unmeetable``). Admission is deliberately
  conservative: it sheds only the provably hopeless; everything tighter
  is caught at run time by deadline-expiry shedding in the dispatcher.
* **Lane assignment** — requests with a client deadline ride the
  ``express`` lane; the rest split into ``shallow`` / ``deep`` by
  search depth. Lanes exist so one class of traffic can be ordered,
  capped, and measured against the others.
* **Picking** — between lanes, earliest-deadline-first (a lane's
  deadline is its most urgent request's; lanes without deadlines rank
  by their cheapest request, so shallow work naturally outranks deep
  backlog). Within a lane, shortest-expected-remaining-work-first with
  FIFO tie-break. A fairness cap bounds any lane's share of recent
  device batches while other lanes have work waiting, so a burst of
  urgent deep searches cannot monopolize the device and starve the
  shallow lane (nor vice versa).
* **Aging** — the fairness cap bounds lane *share*, but a deep request
  with pathological luck could still lose every pick inside its share
  window. :meth:`SchedulingPolicy.apply_aging` promotes any request
  queued longer than ``aging_seconds`` into the express lane and marks
  it ``aged``; aged requests outrank every lane key and every
  within-lane pick, so a starving request's wait is bounded by the
  aging threshold plus one batch of each lane ahead of it.
* **Tenancy** — with a :class:`~repro.tenancy.registry.TenantRegistry`
  attached, admission additionally charges the request's tenant's
  token-bucket lookup budget (dry bucket -> typed
  ``SHED_TENANT_QUOTA``), and picking enforces *weighted fair share*
  between tenants: a tenant whose share of recently served device rows
  exceeds its weight fraction — while other tenants have runnable work
  waiting — is passed over until the window rebalances. Aged requests
  are exempt (starvation freedom outranks share enforcement).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

from repro._bitutils import SEED_BITS
from repro.core.complexity import shell_size
from repro.tenancy.context import DEFAULT_TENANT
from repro.tenancy.registry import TenantRegistry

from repro.sched.errors import (
    SHED_DEADLINE_UNMEETABLE,
    SHED_SATURATED,
    SHED_TENANT_QUOTA,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sched.scheduler import ScheduledSearch

__all__ = ["PolicyConfig", "SchedulingPolicy", "EXPRESS_LANE", "SHALLOW_LANE", "DEEP_LANE"]

EXPRESS_LANE = "express"
SHALLOW_LANE = "shallow"
DEEP_LANE = "deep"


@dataclass(frozen=True)
class PolicyConfig:
    """Tunables of the scheduling policy."""

    #: Requests searching to at least this distance go to the deep lane.
    deep_distance: int = 3
    #: Maximum share of the recent device batches one lane may take
    #: while another lane has runnable work.
    fairness_cap: float = 0.75
    #: Sliding window (in device batches) over which lane shares are
    #: measured for the fairness cap.
    fairness_window: int = 64
    #: Safety factor on the admission deadline check; >1 sheds earlier.
    shed_slack: float = 1.0
    #: Queue age (seconds) past which a request is promoted into the
    #: express lane and picked ahead of everything else (starvation-free
    #: aging). ``None`` disables aging.
    aging_seconds: float | None = 30.0

    def __post_init__(self) -> None:
        if self.deep_distance < 1:
            raise ValueError("deep_distance must be positive")
        if not 0.0 < self.fairness_cap <= 1.0:
            raise ValueError("fairness_cap must be in (0, 1]")
        if self.fairness_window < 1:
            raise ValueError("fairness_window must be positive")
        if self.shed_slack <= 0:
            raise ValueError("shed_slack must be positive")
        if self.aging_seconds is not None and self.aging_seconds <= 0:
            raise ValueError("aging_seconds must be positive (or None)")


class SchedulingPolicy:
    """Deterministic admission + ordering rules the dispatcher consults."""

    def __init__(
        self,
        config: PolicyConfig | None = None,
        tenants: TenantRegistry | None = None,
    ):
        self.config = config if config is not None else PolicyConfig()
        #: Optional tenant registry: admission charges its token buckets
        #: and picking reads its fair-share weights. ``None`` keeps the
        #: policy exactly as tenant-blind as it was before tenancy.
        self.tenants = tenants
        #: Cheapest useful search: the d=0 probe plus the d=1 shell.
        self._min_cover_ranks = 1 + shell_size(1, SEED_BITS)

    # -- lanes ----------------------------------------------------------

    def lane_of(self, max_distance: int, deadline_seconds: float | None) -> str:
        """Which lane a request rides."""
        if deadline_seconds is not None:
            return EXPRESS_LANE
        if max_distance < self.config.deep_distance:
            return SHALLOW_LANE
        return DEEP_LANE

    # -- admission ------------------------------------------------------

    def admission_shed_reason(
        self,
        *,
        queue_depth: int,
        max_queue: int,
        deadline_seconds: float | None,
        throughput: float | None,
        tenant_id: str | None = None,
    ) -> str | None:
        """Why a new request must be shed, or ``None`` to admit.

        The deadline check needs an observed device throughput; before
        the first batches have been measured (and with no hint primed)
        deadline requests are admitted and left to run-time expiry.
        With a tenant registry attached, the tenant's token-bucket
        lookup budget is charged last (so a saturated queue never eats
        the tenant's tokens); a dry bucket sheds ``SHED_TENANT_QUOTA``.
        """
        if queue_depth >= max_queue:
            return SHED_SATURATED
        if deadline_seconds is not None and throughput is not None and throughput > 0:
            min_cover_seconds = self._min_cover_ranks / throughput
            if min_cover_seconds * self.config.shed_slack > deadline_seconds:
                return SHED_DEADLINE_UNMEETABLE
        if self.tenants is not None and not self.tenants.try_admit(tenant_id):
            return SHED_TENANT_QUOTA
        return None

    # -- aging ----------------------------------------------------------

    def apply_aging(
        self, runnable: Sequence["ScheduledSearch"], now: float
    ) -> int:
        """Promote requests queued past ``aging_seconds`` into express.

        Returns how many requests were promoted by this call. Promotion
        is one-way: an aged request keeps its ``aged`` flag (and its
        express-lane ride) until it retires, so one slow request cannot
        oscillate between lanes.
        """
        threshold = self.config.aging_seconds
        if threshold is None:
            return 0
        promoted = 0
        for request in runnable:
            if getattr(request, "aged", False):
                continue
            if now - request.submitted_at >= threshold:
                request.aged = True
                request.lane = EXPRESS_LANE
                promoted += 1
        return promoted

    # -- tenant fair share ----------------------------------------------

    def over_share_tenants(
        self,
        runnable: Sequence["ScheduledSearch"],
        recent_tenant_rows: Iterable[tuple[str, int]],
    ) -> frozenset[str]:
        """Tenants currently over their weighted share of device rows.

        Measured over the recent-rows window, among the tenants that
        have runnable work *right now*: tenant ``t`` is over-share when
        its fraction of recently served rows exceeds
        ``weight(t) / sum(weights of present tenants)``. With fewer than
        two tenants present there is no one to be fair *to*, and if the
        arithmetic ever marks every present tenant over (degenerate
        windows), enforcement is a no-op — fair share throttles, it
        never halts the device.
        """
        if self.tenants is None:
            return frozenset()
        present = {
            getattr(r, "tenant_id", DEFAULT_TENANT) for r in runnable
        }
        if len(present) < 2:
            return frozenset()
        rows_by_tenant: dict[str, int] = {}
        for tenant_id, rows in recent_tenant_rows:
            if tenant_id in present:
                rows_by_tenant[tenant_id] = (
                    rows_by_tenant.get(tenant_id, 0) + rows
                )
        total_rows = sum(rows_by_tenant.values())
        if total_rows <= 0:
            return frozenset()
        total_weight = sum(self.tenants.weight_of(t) for t in present)
        over = frozenset(
            tenant_id
            for tenant_id in present
            if rows_by_tenant.get(tenant_id, 0) / total_rows
            > self.tenants.weight_of(tenant_id) / total_weight
        )
        if over == present:
            return frozenset()
        return over

    def _tenant_eligible(
        self,
        runnable: Sequence["ScheduledSearch"],
        recent_tenant_rows: Iterable[tuple[str, int]],
    ) -> list["ScheduledSearch"]:
        """Runnable requests fair share allows to lead the next batch.

        Aged requests stay eligible regardless of their tenant's share —
        starvation freedom outranks share enforcement.
        """
        over = self.over_share_tenants(runnable, recent_tenant_rows)
        if not over:
            return list(runnable)
        eligible = [
            r
            for r in runnable
            if getattr(r, "aged", False)
            or getattr(r, "tenant_id", DEFAULT_TENANT) not in over
        ]
        return eligible if eligible else list(runnable)

    # -- picking --------------------------------------------------------

    @staticmethod
    def _lane_key(requests: Sequence["ScheduledSearch"]) -> tuple:
        aged = [
            r.submitted_at for r in requests if getattr(r, "aged", False)
        ]
        if aged:
            # A starving request outranks every deadline: its lane goes
            # first, oldest promotion first.
            return (-1, min(aged))
        deadlines = [r.deadline for r in requests if r.deadline is not None]
        if deadlines:
            return (0, min(deadlines))
        return (1, min(r.remaining_work for r in requests))

    def lane_order(
        self, runnable: Sequence["ScheduledSearch"], recent_lanes: Iterable[str]
    ) -> list[str]:
        """Lanes with runnable work, most-preferred first (EDF + cap)."""
        lanes: dict[str, list["ScheduledSearch"]] = {}
        for request in runnable:
            lanes.setdefault(request.lane, []).append(request)
        order = sorted(lanes, key=lambda lane: self._lane_key(lanes[lane]))
        if len(order) < 2:
            return order
        recent = list(recent_lanes)
        if recent:
            share = recent.count(order[0]) / len(recent)
            if share >= self.config.fairness_cap:
                # The preferred lane is over its share while others
                # wait: rotate it to the back for this batch.
                order = order[1:] + order[:1]
        return order

    def pick(
        self,
        runnable: Sequence["ScheduledSearch"],
        recent_lanes: Iterable[str],
        recent_tenant_rows: Iterable[tuple[str, int]] = (),
    ) -> "ScheduledSearch":
        """The request whose chunk the next device batch starts with.

        Tenant fair share filters first (an over-share tenant cannot
        lead a batch while under-share tenants wait), then the lane
        order and within-lane rules run unchanged on what remains.
        """
        if not runnable:
            raise ValueError("pick() needs at least one runnable request")
        eligible = self._tenant_eligible(runnable, recent_tenant_rows)
        lane = self.lane_order(eligible, recent_lanes)[0]
        pool = [r for r in eligible if r.lane == lane]
        return min(
            pool,
            key=lambda r: (
                not getattr(r, "aged", False),
                r.remaining_work,
                r.seq,
            ),
        )

    def fill_order(
        self,
        runnable: Sequence["ScheduledSearch"],
        primary: "ScheduledSearch",
        recent_tenant_rows: Iterable[tuple[str, int]] = (),
    ) -> list["ScheduledSearch"]:
        """Order in which requests may top up the rest of the batch.

        The batch belongs to ``primary``; leftover lanes fill by urgency
        (deadline first), then cheapest remaining work, then FIFO — the
        continuous-batching path that lets many small shells ride one
        device batch. Requests of over-share tenants top up last: they
        still ride spare capacity (work conservation), but never ahead
        of an under-share tenant's chunks.
        """
        over = self.over_share_tenants(runnable, recent_tenant_rows)
        rest = [r for r in runnable if r is not primary]
        rest.sort(
            key=lambda r: (
                not getattr(r, "aged", False),
                getattr(r, "tenant_id", DEFAULT_TENANT) in over,
                r.deadline if r.deadline is not None else float("inf"),
                r.remaining_work,
                r.seq,
            )
        )
        return [primary] + rest
