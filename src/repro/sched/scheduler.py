"""The deadline-aware search scheduler: one device, many requests.

:class:`SearchScheduler` turns concurrent authentication requests into a
shared, continuously-batched work stream. Each submission is decomposed
into shell chunks (:mod:`repro.sched.units`), admitted or shed by the
policy (:mod:`repro.sched.policy`), and served chunk-slice by
chunk-slice through the fused batcher (:mod:`repro.sched.batcher`) on a
single dispatcher thread — the modeled "device". A request retires the
moment its seed is found (its remaining chunks are simply dropped —
the per-request early exit), when its shells are exhausted, when its
protocol time budget expires (a ``timed_out`` result, exactly like the
unscheduled engines), or when its client deadline passes (a typed
:class:`~repro.sched.errors.RequestShed`).

Equivalence contract: a request served alone visits candidates in the
same order as :class:`~repro.runtime.executor.BatchSearchExecutor` —
distance-0 probe first, then ascending shells in ascending rank order —
so scheduled searches return byte-identical seeds to unscheduled ones.
Concurrency interleaves *between* requests, never reorders within one.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from collections.abc import Callable

import numpy as np

from repro._bitutils import seed_to_words
from repro.engines.hooks import EngineHooks
from repro.engines.result import (
    AmortizationStats,
    SchedulingStats,
    SearchResult,
    ShellStats,
)
from repro.runtime.executor import BatchSearchExecutor
from repro.tenancy.context import DEFAULT_TENANT, TenantContext

from repro.sched.batcher import BatchSlice, ContinuousBatcher, UnitCursor
from repro.sched.errors import (
    SHED_DEADLINE_EXPIRED,
    SHED_SHUTDOWN,
    RequestShed,
    SchedulerClosed,
)
from repro.sched.policy import SchedulingPolicy
from repro.sched.units import DEFAULT_CHUNK_RANKS, decompose_search, expected_work

__all__ = ["ScheduledSearch", "SearchScheduler"]

#: EWMA weight of the newest batch in the throughput estimate.
_THROUGHPUT_ALPHA = 0.3


class ScheduledSearch:
    """One admitted request: the caller's ticket and the dispatcher's state.

    Callers use :meth:`result`, :meth:`done`, and
    :meth:`add_done_callback`; every other attribute belongs to the
    scheduler (policy ordering reads ``lane`` / ``deadline`` /
    ``remaining_work`` / ``seq``).
    """

    def __init__(
        self,
        *,
        seq: int,
        client_id: str,
        base_words: np.ndarray,
        target_words: np.ndarray,
        max_distance: int,
        lane: str,
        submitted_at: float,
        time_budget: float | None,
        expiry: float | None,
        deadline: float | None,
        deadline_seconds: float | None,
        cursor: UnitCursor,
        chunks_total: int,
        tenant_id: str = DEFAULT_TENANT,
    ):
        self.seq = seq
        self.client_id = client_id
        #: Which tenant this request belongs to (fair-share + telemetry).
        self.tenant_id = tenant_id
        self.base_words = base_words
        self.target_words = target_words
        self.max_distance = max_distance
        self.lane = lane
        self.submitted_at = submitted_at
        self.time_budget = time_budget
        #: Absolute protocol time-budget expiry (T), or None.
        self.expiry = expiry
        #: Absolute client deadline (shed past this), or None.
        self.deadline = deadline
        self.deadline_seconds = deadline_seconds
        self.cursor = cursor
        self.chunks_total = chunks_total
        self.remaining_work = expected_work(max_distance)
        #: Promoted into the express lane by starvation-free aging.
        self.aged = False
        # -- accounting, dispatcher-thread only --
        self.seeds_hashed = 0
        self.shell_hashed: dict[int, int] = {}
        self.shell_seconds: dict[int, float] = {}
        self.batches = 0
        self.shared_batches = 0
        self.preemptions = 0
        self.first_batch_at: float | None = None
        # -- completion --
        self._done = threading.Event()
        self._result: SearchResult | None = None
        self._error: RequestShed | None = None
        self._callbacks: list[Callable[["ScheduledSearch"], None]] = []
        self._callback_lock = threading.Lock()

    # -- caller surface -------------------------------------------------

    def done(self) -> bool:
        """True once the request has a result or was shed."""
        return self._done.is_set()

    def result(self, timeout: float | None = None) -> SearchResult:
        """Block for the outcome; raises :class:`RequestShed` if shed."""
        if not self._done.wait(timeout):
            raise TimeoutError("scheduled search still in flight")
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result

    def add_done_callback(
        self, callback: Callable[["ScheduledSearch"], None]
    ) -> None:
        """Run ``callback(self)`` when the request retires.

        Fires immediately if already done. Callbacks run on the
        dispatcher thread — keep them cheap.
        """
        with self._callback_lock:
            if not self._done.is_set():
                self._callbacks.append(callback)
                return
        callback(self)

    # -- dispatcher surface ---------------------------------------------

    def _resolve(
        self, result: SearchResult | None, error: RequestShed | None
    ) -> None:
        with self._callback_lock:
            self._result = result
            self._error = error
            self._done.set()
            callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def scheduling_stats(self, now: float) -> SchedulingStats:
        """This request's :class:`SchedulingStats` as of ``now``."""
        started = self.first_batch_at
        return SchedulingStats(
            lane=self.lane,
            tenant=self.tenant_id,
            deadline_seconds=self.deadline_seconds,
            queue_seconds=(started if started is not None else now)
            - self.submitted_at,
            service_seconds=0.0 if started is None else now - started,
            batches=self.batches,
            shared_batches=self.shared_batches,
            preemptions=self.preemptions,
            chunks_total=self.chunks_total,
            chunks_run=self.cursor.units_started,
        )


class SearchScheduler:
    """Continuous-batching EDF scheduler over one vectorized device."""

    def __init__(
        self,
        hash_name: str = "sha3-256",
        batch_size: int = 16384,
        iterator: str = "unrank",
        fixed_padding: bool = True,
        hooks: EngineHooks | None = None,
        cache: bool = True,
        warm: int = 0,
        chunk_ranks: int = DEFAULT_CHUNK_RANKS,
        max_queue: int = 256,
        policy: SchedulingPolicy | None = None,
        throughput_hint: float | None = None,
    ):
        if max_queue < 1:
            raise ValueError("max_queue must be positive")
        if chunk_ranks < batch_size:
            raise ValueError("chunk_ranks must be at least batch_size")
        self._executor = BatchSearchExecutor(
            hash_name=hash_name,
            batch_size=batch_size,
            iterator=iterator,
            fixed_padding=fixed_padding,
            hooks=None,
            cache=cache,
            warm=warm,
        )
        self._batcher = ContinuousBatcher(self._executor.algo, fixed_padding)
        self.hooks = hooks
        self.max_queue = max_queue
        self.chunk_ranks = chunk_ranks
        self.policy = policy if policy is not None else SchedulingPolicy()
        self._wake = threading.Condition()
        self._active: list[ScheduledSearch] = []
        self._recent_lanes: deque[str] = deque(
            maxlen=self.policy.config.fairness_window
        )
        #: (tenant_id, rows) of recent batch outcomes — the window the
        #: weighted fair-share filter measures tenant device share over.
        self._recent_tenant_rows: deque[tuple[str, int]] = deque(
            maxlen=self.policy.config.fairness_window
        )
        self._thread: threading.Thread | None = None
        self._closed = False
        self._drain = True
        self._seq = 0
        self._last_primary: ScheduledSearch | None = None
        self._throughput: float | None = throughput_hint
        # -- counters (guarded by _wake's lock) --
        self._admitted = 0
        self._completed = 0
        self._found = 0
        self._timed_out = 0
        self._shed: dict[str, int] = {}
        self._preempted = 0
        self._peak_depth = 0
        self._batches_by_lane: dict[str, int] = {}
        self._aged_promotions = 0
        #: Per-tenant admitted / shed / served-row counters.
        self._tenant_admitted: dict[str, int] = {}
        self._tenant_shed: dict[str, int] = {}
        self._tenant_rows: dict[str, int] = {}

    # -- public geometry ------------------------------------------------

    @property
    def executor(self) -> BatchSearchExecutor:
        """The underlying vectorized device this scheduler feeds."""
        return self._executor

    @property
    def batch_size(self) -> int:
        return self._executor.batch_size

    @property
    def hash_name(self) -> str:
        return self._executor.hash_name

    def describe(self) -> str:
        """Canonical ``sched:`` spec string for this configuration."""
        spec = f"sched:{self._executor.hash_name},bs={self._executor.batch_size}"
        if self._executor.iterator != "unrank":
            spec += f",it={self._executor.iterator}"
        if not self._executor.cache:
            spec += ",cache=no"
        return spec

    def prime_throughput(self, hashes_per_second: float) -> None:
        """Seed the admission controller's throughput estimate.

        Normally the estimate converges from observed batches; priming
        it (e.g. from :meth:`BatchSearchExecutor.throughput_probe`) lets
        deadline admission work from the very first request.
        """
        if hashes_per_second <= 0:
            raise ValueError("throughput must be positive")
        with self._wake:
            self._throughput = hashes_per_second

    # -- submission -----------------------------------------------------

    def submit(
        self,
        base_seed: bytes,
        target_digest: bytes,
        max_distance: int,
        *,
        time_budget: float | None = None,
        deadline_seconds: float | None = None,
        client_id: str = "",
        tenant: TenantContext | str | None = None,
    ) -> ScheduledSearch:
        """Admit one search into the shared work stream.

        ``time_budget`` is the protocol threshold T — on expiry the
        request completes with a ``timed_out`` result, exactly like the
        unscheduled engines. ``deadline_seconds`` is the client's TTL —
        a request that cannot meet it (or outlives it) is *shed* with a
        typed :class:`RequestShed`. ``tenant`` attributes the request to
        a tenant for quota admission and weighted fair share; omitted,
        it runs under the default tenant exactly as before tenancy.
        Raises :class:`SchedulerClosed` after :meth:`close`, and
        :class:`RequestShed` on admission rejection (full queue /
        hopeless deadline / exhausted tenant budget).
        """
        if max_distance < 0:
            raise ValueError("max_distance must be non-negative")
        if deadline_seconds is not None and deadline_seconds < 0:
            raise ValueError("deadline_seconds must be non-negative")
        if isinstance(tenant, TenantContext):
            tenant_id = tenant.tenant_id
        else:
            tenant_id = tenant or DEFAULT_TENANT
        now = time.perf_counter()
        units = decompose_search(max_distance, self.chunk_ranks)
        with self._wake:
            if self._closed:
                raise SchedulerClosed("scheduler is closed")
            reason = self.policy.admission_shed_reason(
                queue_depth=len(self._active),
                max_queue=self.max_queue,
                deadline_seconds=deadline_seconds,
                throughput=self._throughput,
                tenant_id=tenant_id,
            )
            if reason is not None:
                self._shed[reason] = self._shed.get(reason, 0) + 1
                self._tenant_shed[tenant_id] = (
                    self._tenant_shed.get(tenant_id, 0) + 1
                )
                raise RequestShed(reason, f"client {client_id!r}")
            self._seq += 1
            request = ScheduledSearch(
                seq=self._seq,
                client_id=client_id,
                base_words=seed_to_words(base_seed),
                target_words=self._executor.algo.digest_to_words(target_digest),
                max_distance=max_distance,
                lane=self.policy.lane_of(max_distance, deadline_seconds),
                submitted_at=now,
                time_budget=time_budget,
                expiry=None if time_budget is None else now + time_budget,
                deadline=(
                    None if deadline_seconds is None else now + deadline_seconds
                ),
                deadline_seconds=deadline_seconds,
                cursor=UnitCursor(self._executor, units),
                chunks_total=len(units),
                tenant_id=tenant_id,
            )
            self._admitted += 1
            self._tenant_admitted[tenant_id] = (
                self._tenant_admitted.get(tenant_id, 0) + 1
            )
            self._active.append(request)
            self._peak_depth = max(self._peak_depth, len(self._active))
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._dispatch_loop,
                    name="rbc-sched-dispatch",
                    daemon=True,
                )
                self._thread.start()
            self._wake.notify_all()
        return request

    # -- dispatcher -----------------------------------------------------

    def _dispatch_loop(self) -> None:
        try:
            while True:
                with self._wake:
                    while not self._active and not self._closed:
                        self._wake.wait()
                    if self._closed and (not self._active or not self._drain):
                        to_shed = list(self._active)
                        self._active.clear()
                        break
                    now = time.perf_counter()
                    runnable, expired = self._partition(now)
                if expired:
                    for request, kind in expired:
                        if kind == "deadline":
                            self._finalize_shed(request, SHED_DEADLINE_EXPIRED)
                        else:
                            self._finalize_result(request, timed_out=True)
                if not runnable:
                    continue
                self._run_one_batch(runnable)
        except Exception:  # pragma: no cover - defensive: never hang callers
            with self._wake:
                self._closed = True
                to_shed = list(self._active)
                self._active.clear()
            for request in to_shed:
                self._finalize_shed(request, SHED_SHUTDOWN)
            raise
        for request in to_shed:
            self._finalize_shed(request, SHED_SHUTDOWN)

    def _partition(
        self, now: float
    ) -> tuple[list[ScheduledSearch], list[tuple[ScheduledSearch, str]]]:
        """Split active requests into runnable vs. expired (lock held)."""
        runnable: list[ScheduledSearch] = []
        expired: list[tuple[ScheduledSearch, str]] = []
        for request in self._active:
            if request.deadline is not None and now > request.deadline:
                expired.append((request, "deadline"))
            elif (
                request.expiry is not None
                and now > request.expiry
                and (
                    # The budget check runs between device batches,
                    # exactly where the unscheduled engines check
                    # theirs...
                    request.batches >= 1
                    # ...plus a starvation guard: a request that waited
                    # out twice its budget without ever reaching the
                    # device is hopeless and must not hang its caller.
                    or now > request.expiry + (request.time_budget or 0.0)
                )
            ):
                expired.append((request, "budget"))
            else:
                runnable.append(request)
        for request, _ in expired:
            self._active.remove(request)
        return runnable, expired

    def _run_one_batch(self, runnable: list[ScheduledSearch]) -> None:
        promoted = self.policy.apply_aging(runnable, time.perf_counter())
        if promoted:
            with self._wake:
                self._aged_promotions += promoted
        primary = self.policy.pick(
            runnable, self._recent_lanes, self._recent_tenant_rows
        )
        last = self._last_primary
        if (
            last is not None
            and last is not primary
            and not last.done()
            and last in runnable
        ):
            last.preemptions += 1
            with self._wake:
                self._preempted += 1
        self._last_primary = primary

        slices: list[BatchSlice] = []
        drained: list[ScheduledSearch] = []
        room = self._executor.batch_size
        for request in self.policy.fill_order(
            runnable, primary, self._recent_tenant_rows
        ):
            if room <= 0:
                break
            taken = request.cursor.take(room)
            if taken is None:
                drained.append(request)
                continue
            distance, masks = taken
            slices.append(
                BatchSlice(
                    key=request,
                    distance=distance,
                    masks=masks,
                    base_words=request.base_words,
                    target_words=request.target_words,
                )
            )
            room -= masks.shape[0]

        # Requests that had nothing left to serve and found nothing in
        # any earlier batch are exhausted: a clean not-found result.
        for request in drained:
            with self._wake:
                if request in self._active:
                    self._active.remove(request)
            self._finalize_result(request, timed_out=False)
        if not slices:
            return

        outcomes = self._batcher.run(slices)
        shared = len(slices) > 1
        with self._wake:
            self._recent_lanes.append(primary.lane)
            self._batches_by_lane[primary.lane] = (
                self._batches_by_lane.get(primary.lane, 0) + 1
            )
            for outcome in outcomes:
                served: ScheduledSearch = outcome.key  # type: ignore[assignment]
                self._recent_tenant_rows.append(
                    (served.tenant_id, outcome.rows)
                )
                self._tenant_rows[served.tenant_id] = (
                    self._tenant_rows.get(served.tenant_id, 0) + outcome.rows
                )
            total_rows = sum(outcome.rows for outcome in outcomes)
            total_seconds = max(
                sum(outcome.seconds for outcome in outcomes), 1e-9
            )
            rate = total_rows / total_seconds
            self._throughput = (
                rate
                if self._throughput is None
                else (1 - _THROUGHPUT_ALPHA) * self._throughput
                + _THROUGHPUT_ALPHA * rate
            )

        now = time.perf_counter()
        on_batch = self.hooks.on_batch if self.hooks is not None else None
        for outcome in outcomes:
            request: ScheduledSearch = outcome.key  # type: ignore[assignment]
            if request.first_batch_at is None:
                request.first_batch_at = now
            request.batches += 1
            if shared:
                request.shared_batches += 1
            request.seeds_hashed += outcome.rows
            request.remaining_work = max(
                0, request.remaining_work - outcome.rows
            )
            request.shell_hashed[outcome.distance] = (
                request.shell_hashed.get(outcome.distance, 0) + outcome.rows
            )
            request.shell_seconds[outcome.distance] = (
                request.shell_seconds.get(outcome.distance, 0.0)
                + outcome.seconds
            )
            if on_batch is not None:
                on_batch(outcome.distance, outcome.rows)
            if outcome.seed is not None:
                with self._wake:
                    if request in self._active:
                        self._active.remove(request)
                self._finalize_result(
                    request,
                    timed_out=False,
                    seed=outcome.seed,
                    distance=outcome.distance,
                )

    # -- finalization ---------------------------------------------------

    def _emit_hooks(
        self,
        request: ScheduledSearch,
        shells: tuple[ShellStats, ...],
        amortized: AmortizationStats | None,
        scheduling: SchedulingStats,
    ) -> None:
        hooks = self.hooks
        if hooks is None:
            return
        for shell in shells:
            hooks.on_shell_complete(shell)
        if amortized is not None:
            on_amortization = getattr(hooks, "on_amortization", None)
            if on_amortization is not None:
                on_amortization(amortized)
        on_schedule = getattr(hooks, "on_schedule", None)
        if on_schedule is not None:
            on_schedule(scheduling)

    def _amortization(
        self, request: ScheduledSearch
    ) -> AmortizationStats | None:
        cache = self._executor.plan_cache
        if cache is None:
            return None
        hits, misses = request.cursor.counters
        return AmortizationStats(
            plan_hits=hits, plan_misses=misses, plan_bytes=cache.bytes_in_use
        )

    def _finalize_result(
        self,
        request: ScheduledSearch,
        *,
        timed_out: bool,
        seed: bytes | None = None,
        distance: int | None = None,
    ) -> None:
        now = time.perf_counter()
        found = seed is not None
        shells = tuple(
            ShellStats(d, request.shell_hashed[d], request.shell_seconds[d])
            for d in sorted(request.shell_hashed)
        )
        scheduling = request.scheduling_stats(now)
        amortized = self._amortization(request)
        result = SearchResult(
            found=found,
            seed=seed,
            distance=distance,
            seeds_hashed=request.seeds_hashed,
            elapsed_seconds=now - request.submitted_at,
            timed_out=timed_out,
            shells=shells,
            engine=self.describe(),
            amortized=amortized,
            scheduling=scheduling,
        )
        with self._wake:
            self._completed += 1
            if found:
                self._found += 1
            if timed_out:
                self._timed_out += 1
        self._emit_hooks(request, shells, amortized, scheduling)
        request._resolve(result, None)

    def _finalize_shed(self, request: ScheduledSearch, reason: str) -> None:
        now = time.perf_counter()
        scheduling = request.scheduling_stats(now)
        with self._wake:
            self._shed[reason] = self._shed.get(reason, 0) + 1
            self._tenant_shed[request.tenant_id] = (
                self._tenant_shed.get(request.tenant_id, 0) + 1
            )
        on_schedule = getattr(self.hooks, "on_schedule", None)
        if on_schedule is not None:
            on_schedule(scheduling)
        request._resolve(
            None, RequestShed(reason, f"client {request.client_id!r}")
        )

    # -- observation ----------------------------------------------------

    def snapshot(self) -> dict[str, object]:
        """A consistent copy of the scheduler's counters."""
        with self._wake:
            shed_reasons = dict(self._shed)
            tenant_ids = sorted(
                set(self._tenant_admitted)
                | set(self._tenant_shed)
                | set(self._tenant_rows)
            )
            total_tenant_rows = sum(self._tenant_rows.values())
            tenants = {
                tenant_id: {
                    "admitted": self._tenant_admitted.get(tenant_id, 0),
                    "shed": self._tenant_shed.get(tenant_id, 0),
                    "rows": self._tenant_rows.get(tenant_id, 0),
                    "device_share": (
                        self._tenant_rows.get(tenant_id, 0)
                        / total_tenant_rows
                        if total_tenant_rows
                        else 0.0
                    ),
                }
                for tenant_id in tenant_ids
            }
            return {
                "admitted": self._admitted,
                "completed": self._completed,
                "found": self._found,
                "timed_out": self._timed_out,
                "shed": sum(shed_reasons.values()),
                "shed_reasons": shed_reasons,
                "preempted": self._preempted,
                "aged_promotions": self._aged_promotions,
                "queue_depth": len(self._active),
                "peak_queue_depth": self._peak_depth,
                "batches": self._batcher.batches,
                "shared_batches": self._batcher.shared_batches,
                "batches_by_lane": dict(self._batches_by_lane),
                "throughput": self._throughput,
                "tenants": tenants,
            }

    # -- lifecycle ------------------------------------------------------

    def close(self, drain: bool = True) -> None:
        """Stop admissions and retire the dispatcher deterministically.

        With ``drain=True`` (default) every in-flight request runs to
        its natural outcome first; with ``drain=False`` pending requests
        are shed with reason ``"shutdown"``. Either way, when this
        method returns the dispatcher thread has exited and every
        ticket is resolved. Idempotent.
        """
        with self._wake:
            if self._closed:
                thread = self._thread
            else:
                self._closed = True
                self._drain = drain
                thread = self._thread
                self._wake.notify_all()
        if thread is not None:
            thread.join()

    def __enter__(self) -> "SearchScheduler":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
