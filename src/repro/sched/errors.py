"""Typed scheduler failures.

The scheduler never loses a request silently: every submission either
resolves to a :class:`~repro.engines.result.SearchResult` or fails with
one of these types, carrying the reason the admission controller or the
dispatcher gave up on it. The serving layer counts sheds off the
``reason`` field, and the chaos harness treats them as typed outcomes.
"""

from __future__ import annotations

__all__ = [
    "SchedulerError",
    "SchedulerClosed",
    "RequestShed",
    "SHED_SATURATED",
    "SHED_DEADLINE_UNMEETABLE",
    "SHED_DEADLINE_EXPIRED",
    "SHED_SHUTDOWN",
    "SHED_NO_DEVICES",
    "SHED_DIRECTORY_UNAVAILABLE",
    "SHED_TENANT_QUOTA",
]

#: A full admission queue refused the request outright.
SHED_SATURATED = "saturated"
#: The deadline cannot be met even by the cheapest useful search.
SHED_DEADLINE_UNMEETABLE = "deadline_unmeetable"
#: The deadline passed while the request was queued or in service.
SHED_DEADLINE_EXPIRED = "deadline_expired"
#: The scheduler was closed without draining.
SHED_SHUTDOWN = "shutdown"
#: Every device in the fleet stayed quarantined past the grace window.
SHED_NO_DEVICES = "no_healthy_devices"
#: Every replica of the client's enrollment record is unreachable: the
#: CA cannot even fetch the image to search against. Degraded-mode
#: serving sheds the request instead of erroring — the failure is the
#: directory's, not the client's, and it clears when a replica rejoins.
SHED_DIRECTORY_UNAVAILABLE = "directory_unavailable"
#: The request's tenant exhausted its admission budget (token-bucket
#: lookup rate). The failure is the *tenant's* aggregate behaviour, not
#: this request's: within-quota tenants keep being admitted, and the
#: shed clears as soon as the bucket refills.
SHED_TENANT_QUOTA = "tenant_quota"


class SchedulerError(Exception):
    """Base class for scheduler-level failures."""


class SchedulerClosed(SchedulerError):
    """Submission after :meth:`SearchScheduler.close`."""


class RequestShed(SchedulerError):
    """The scheduler dropped this request; ``reason`` says why."""

    def __init__(self, reason: str, detail: str = ""):
        message = f"request shed ({reason})"
        if detail:
            message += f": {detail}"
        super().__init__(message)
        self.reason = reason
        self.detail = detail
