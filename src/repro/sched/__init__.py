"""Deadline-aware continuous-batching scheduler for multi-client serving.

The layer between the protocol front end and the execution stack:
concurrent authentication requests are decomposed into shell chunks
(:mod:`~repro.sched.units`), admitted and ordered by deadline-aware
lanes with a fairness cap (:mod:`~repro.sched.policy`), and served
through a fused batcher that packs many clients' candidates into each
device batch (:mod:`~repro.sched.batcher`). The scheduler core
(:mod:`~repro.sched.scheduler`) runs it all on one dispatcher thread;
:mod:`~repro.sched.engine` exposes it as the ``sched:`` engine spec.

Quick start::

    from repro.engines import build_engine

    engine = build_engine("sched:sha3-256,bs=16384")
    ticket = engine.submit(seed, digest, 4, deadline_seconds=5.0)
    result = ticket.result()
"""

from __future__ import annotations

from repro.sched.batcher import BatchSlice, ContinuousBatcher, SliceOutcome, UnitCursor
from repro.sched.engine import ScheduledSearchEngine
from repro.sched.errors import (
    SHED_DEADLINE_EXPIRED,
    SHED_DEADLINE_UNMEETABLE,
    SHED_NO_DEVICES,
    SHED_SATURATED,
    SHED_SHUTDOWN,
    RequestShed,
    SchedulerClosed,
    SchedulerError,
)
from repro.sched.policy import (
    DEEP_LANE,
    EXPRESS_LANE,
    SHALLOW_LANE,
    PolicyConfig,
    SchedulingPolicy,
)
from repro.sched.scheduler import ScheduledSearch, SearchScheduler
from repro.sched.units import (
    DEFAULT_CHUNK_RANKS,
    WorkUnit,
    decompose_search,
    expected_work,
)

__all__ = [
    "WorkUnit",
    "decompose_search",
    "expected_work",
    "DEFAULT_CHUNK_RANKS",
    "PolicyConfig",
    "SchedulingPolicy",
    "EXPRESS_LANE",
    "SHALLOW_LANE",
    "DEEP_LANE",
    "UnitCursor",
    "BatchSlice",
    "SliceOutcome",
    "ContinuousBatcher",
    "ScheduledSearch",
    "SearchScheduler",
    "ScheduledSearchEngine",
    "SchedulerError",
    "SchedulerClosed",
    "RequestShed",
    "SHED_SATURATED",
    "SHED_DEADLINE_UNMEETABLE",
    "SHED_DEADLINE_EXPIRED",
    "SHED_SHUTDOWN",
    "SHED_NO_DEVICES",
]
