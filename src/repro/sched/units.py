"""Work-unit decomposition: one search becomes schedulable shell chunks.

Algorithm 1 explores the Hamming ball shell by shell. The scheduler
needs something finer than "one request = one unit of work": a d=4
request holds the device for the whole ``C(256, 4)`` shell if it cannot
be set aside mid-shell. This module slices each shell into contiguous
rank chunks (the same half-open rank geometry the partitioner gives the
parallel engines), so the dispatcher can interleave chunks of many
requests and retire the remainder of a request the moment its seed is
found.

Chunk geometry is a pure function of ``(distance, shell size,
chunk_ranks)`` — every request at the same search depth produces
identical ``(distance, lo, hi)`` chunks, so the mask plans built for one
client's chunks are plan-cache hits for every other client
(:mod:`repro.runtime.maskplan`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._bitutils import SEED_BITS
from repro.combinatorics.binomial import binomial
from repro.runtime.partition import partition_ranks

__all__ = ["WorkUnit", "decompose_search", "expected_work", "DEFAULT_CHUNK_RANKS"]

#: Default chunk size in candidate seeds. Large enough that full device
#: batches fit inside one chunk (8x the default 16384 lane width), small
#: enough that a deep shell yields thousands of preemption points.
DEFAULT_CHUNK_RANKS = 1 << 17


@dataclass(frozen=True)
class WorkUnit:
    """One schedulable chunk: ranks ``[lo, hi)`` of one Hamming shell.

    Distance 0 is the single-candidate probe of the enrolled seed itself
    (Algorithm 1 lines 4-8), expressed as the unit ``(0, 0, 1)`` so the
    dispatcher treats it like any other chunk.
    """

    distance: int
    lo: int
    hi: int

    @property
    def cost(self) -> int:
        """Candidate seeds this unit hashes."""
        return self.hi - self.lo


def decompose_search(
    max_distance: int,
    chunk_ranks: int = DEFAULT_CHUNK_RANKS,
    n_bits: int = SEED_BITS,
) -> list[WorkUnit]:
    """Slice a full search into work units, in execution order.

    Order is the protocol's: the distance-0 probe first, then shells in
    ascending distance, and ascending rank within each shell — running
    the units sequentially visits candidates in exactly the order the
    single-process engine does, which is what keeps scheduled results
    byte-identical to unscheduled ones.
    """
    if max_distance < 0:
        raise ValueError("max_distance must be non-negative")
    if chunk_ranks < 1:
        raise ValueError("chunk_ranks must be positive")
    units = [WorkUnit(0, 0, 1)]
    for distance in range(1, max_distance + 1):
        total = binomial(n_bits, distance)
        parts = max(1, -(-total // chunk_ranks))  # ceil division
        for lo, hi in partition_ranks(total, parts):
            if lo < hi:
                units.append(WorkUnit(distance, lo, hi))
    return units


def expected_work(max_distance: int, n_bits: int = SEED_BITS) -> int:
    """Exhaustive candidate count for a search to ``max_distance``.

    Equation 1's server-side cost — what the admission controller and
    the shortest-expected-work-first ordering charge a request before it
    has run (the running remainder is tracked per request as chunks
    complete).
    """
    if max_distance < 0:
        raise ValueError("max_distance must be non-negative")
    return 1 + sum(
        binomial(n_bits, distance) for distance in range(1, max_distance + 1)
    )
