"""``sched:`` engine: the scheduler behind the standard engine protocol.

:class:`ScheduledSearchEngine` satisfies
:class:`~repro.engines.result.SearchEngine`, so the registry, the
wrappers, the serving layer, and the equivalence tests treat the
scheduler like any other engine. A blocking :meth:`search` submits one
request and waits for its ticket; the serving layer uses
:meth:`submit` to keep many requests in flight on the shared device.
"""

from __future__ import annotations

from repro.engines.hooks import EngineHooks
from repro.engines.result import SearchResult
from repro.tenancy.context import TenantContext
from repro.tenancy.registry import TenantRegistry

from repro.sched.policy import PolicyConfig, SchedulingPolicy
from repro.sched.scheduler import ScheduledSearch, SearchScheduler
from repro.sched.units import DEFAULT_CHUNK_RANKS

__all__ = ["ScheduledSearchEngine"]


class ScheduledSearchEngine:
    """Continuous-batching scheduled search as a drop-in engine."""

    def __init__(
        self,
        hash_name: str = "sha3-256",
        batch_size: int = 16384,
        iterator: str = "unrank",
        fixed_padding: bool = True,
        hooks: EngineHooks | None = None,
        cache: bool = True,
        warm: int = 0,
        chunk_ranks: int = DEFAULT_CHUNK_RANKS,
        max_queue: int = 256,
        deep_distance: int = 3,
        fairness_cap: float = 0.75,
        aging_seconds: float | None = 30.0,
        scheduler: SearchScheduler | None = None,
        tenants: TenantRegistry | None = None,
    ):
        if scheduler is not None:
            self.scheduler = scheduler
        else:
            self.scheduler = SearchScheduler(
                hash_name=hash_name,
                batch_size=batch_size,
                iterator=iterator,
                fixed_padding=fixed_padding,
                hooks=hooks,
                cache=cache,
                warm=warm,
                chunk_ranks=max(chunk_ranks, batch_size),
                max_queue=max_queue,
                policy=SchedulingPolicy(
                    PolicyConfig(
                        deep_distance=deep_distance,
                        fairness_cap=fairness_cap,
                        aging_seconds=aging_seconds,
                    ),
                    tenants=tenants,
                ),
            )

    # -- engine geometry (what wrappers and engine_target read) ---------

    @property
    def algo(self):
        """The hash algorithm the scheduled device searches with."""
        return self.scheduler.executor.algo

    @property
    def hash_name(self) -> str:
        return self.scheduler.hash_name

    @property
    def batch_size(self) -> int:
        return self.scheduler.batch_size

    def describe(self) -> str:
        """Canonical spec string for this engine's configuration."""
        return self.scheduler.describe()

    def throughput_probe(self, num_seeds: int = 50000, **kwargs) -> object:
        """Kernel throughput of the underlying device (see executor)."""
        return self.scheduler.executor.throughput_probe(num_seeds, **kwargs)

    # -- searching ------------------------------------------------------

    def search(
        self,
        base_seed: bytes,
        target_digest: bytes,
        max_distance: int,
        time_budget: float | None = None,
    ) -> SearchResult:
        """One blocking search through the shared work stream."""
        ticket = self.scheduler.submit(
            base_seed,
            target_digest,
            max_distance,
            time_budget=time_budget,
        )
        return ticket.result()

    def submit(
        self,
        base_seed: bytes,
        target_digest: bytes,
        max_distance: int,
        *,
        time_budget: float | None = None,
        deadline_seconds: float | None = None,
        client_id: str = "",
        tenant: TenantContext | str | None = None,
    ) -> ScheduledSearch:
        """Non-blocking admission; returns the scheduler's ticket."""
        return self.scheduler.submit(
            base_seed,
            target_digest,
            max_distance,
            time_budget=time_budget,
            deadline_seconds=deadline_seconds,
            client_id=client_id,
            tenant=tenant,
        )

    # -- lifecycle ------------------------------------------------------

    def close(self, drain: bool = True) -> None:
        """Close the underlying scheduler (see ``SearchScheduler.close``)."""
        self.scheduler.close(drain=drain)

    def __enter__(self) -> "ScheduledSearchEngine":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
