"""Continuous batcher: many requests' candidates in one kernel call.

The throughput devices the paper evaluates only pay off when their
batches are full. A lone d<=1 request offers 257 candidates — a few
percent of one device batch — so serving requests one at a time leaves
the device idle. This module fuses chunks from *different* requests into
one full-width batch: each request contributes a slice of candidate
seeds (its base seed XOR its chunk's masks), the whole batch is hashed
with a single kernel call, and each slice is compared against its own
client's digest.

Two pieces:

* :class:`UnitCursor` — walks one request's remaining
  :class:`~repro.sched.units.WorkUnit` chunks and serves mask-word
  slices of any requested width, never mixing Hamming distances within
  a slice (plan-cache aware via the executor's mask pipeline);
* :class:`ContinuousBatcher` — takes the slices the dispatcher
  assembled, runs the fused XOR + hash + compare, and reports per-slice
  outcomes (first matching rank wins within a slice, preserving the
  single-engine candidate order).
"""

from __future__ import annotations

import time
from collections import deque
from collections.abc import Iterator
from dataclasses import dataclass

import numpy as np

from repro._bitutils import words_to_seed
from repro.hashes.registry import HashAlgorithm
from repro.runtime.executor import BatchSearchExecutor

from repro.sched.units import WorkUnit

__all__ = ["UnitCursor", "BatchSlice", "SliceOutcome", "ContinuousBatcher"]

_ZERO_MASK = np.zeros((1, 4), dtype=np.uint64)


class UnitCursor:
    """Serves mask-word slices across one request's work units, in order."""

    def __init__(self, executor: BatchSearchExecutor, units: list[WorkUnit]):
        self._executor = executor
        self._units: deque[WorkUnit] = deque(units)
        self._batches: Iterator[np.ndarray] | None = None
        self._pending: np.ndarray | None = None
        self._distance = 0
        #: Slices returned to the cursor after a device failed mid-batch;
        #: served before anything else so candidate order is preserved.
        self._replay: deque[tuple[int, np.ndarray]] = deque()
        #: ``[plan hits, plan misses]`` accumulated across all units.
        self.counters = [0, 0]
        #: Units whose first slice has been served (chunks_run telemetry).
        self.units_started = 0

    @property
    def exhausted(self) -> bool:
        """True when every unit has been fully served."""
        return (
            not self._replay
            and self._pending is None
            and self._batches is None
            and not self._units
        )

    @property
    def pending_chunks(self) -> int:
        """Chunks not yet fully served (replayed slices + current + units)."""
        current = 1 if self._pending is not None or self._batches is not None else 0
        return len(self._replay) + current + len(self._units)

    def push_back(self, distance: int, masks: np.ndarray) -> None:
        """Return an unconsumed slice to the *front* of the cursor.

        Used when a device dies mid-batch: the dispatcher pushes the
        failed batch's slices back (in reverse order, so earlier slices
        end up in front) and a surviving device replays them in the
        original candidate order — the byte-equivalence contract holds
        across re-dispatch.
        """
        self._replay.appendleft((distance, masks))

    def take(self, max_rows: int) -> tuple[int, np.ndarray] | None:
        """Up to ``max_rows`` mask words from the current shell.

        Returns ``(distance, masks)`` or ``None`` when exhausted. A
        slice never spans two distances; the distance-0 unit serves the
        all-zero mask (the enrolled seed itself).
        """
        if max_rows < 1:
            raise ValueError("max_rows must be positive")
        while True:
            if self._replay:
                distance, rows = self._replay[0]
                if rows.shape[0] > max_rows:
                    self._replay[0] = (distance, rows[max_rows:])
                    return distance, rows[:max_rows]
                self._replay.popleft()
                return distance, rows
            if self._pending is not None:
                rows = self._pending
                if rows.shape[0] > max_rows:
                    self._pending = rows[max_rows:]
                    return self._distance, rows[:max_rows]
                self._pending = None
                return self._distance, rows
            if self._batches is None:
                if not self._units:
                    return None
                unit = self._units.popleft()
                self._distance = unit.distance
                self.units_started += 1
                if unit.distance == 0:
                    self._pending = _ZERO_MASK
                    continue
                self._batches = self._executor.mask_batches(
                    unit.distance, unit.lo, unit.hi, self.counters
                )
            batch = next(self._batches, None)
            if batch is None:
                self._batches = None
                continue
            self._pending = batch


@dataclass(frozen=True)
class BatchSlice:
    """One request's contribution to a fused device batch."""

    #: Opaque handle the dispatcher uses to route the outcome back.
    key: object
    distance: int
    masks: np.ndarray  # (N, 4) uint64 XOR masks
    base_words: np.ndarray  # (4,) uint64 enrolled seed
    target_words: np.ndarray  # digest words this slice compares against


@dataclass(frozen=True)
class SliceOutcome:
    """What one slice of a fused batch produced."""

    key: object
    distance: int
    rows: int
    #: Matching seed (bytes) at the lowest rank within the slice, if any.
    seed: bytes | None
    #: Wall-clock share of the fused batch attributed to this slice.
    seconds: float


class ContinuousBatcher:
    """Fused XOR + hash + compare over slices from many requests."""

    def __init__(self, algo: HashAlgorithm, fixed_padding: bool = True):
        self.algo = algo
        self.fixed_padding = fixed_padding
        #: Fused batches run / batches carrying more than one request.
        self.batches = 0
        self.shared_batches = 0

    def run(self, slices: list[BatchSlice]) -> list[SliceOutcome]:
        """Hash every slice's candidates in one kernel call."""
        if not slices:
            return []
        start = time.perf_counter()
        candidates = [s.base_words[None, :] ^ s.masks for s in slices]
        combined = candidates[0] if len(candidates) == 1 else np.concatenate(candidates)
        digests = self.algo.hash_seeds_batch(
            combined, fixed_padding=self.fixed_padding
        )
        elapsed = time.perf_counter() - start
        total_rows = combined.shape[0]
        self.batches += 1
        if len(slices) > 1:
            self.shared_batches += 1

        outcomes: list[SliceOutcome] = []
        offset = 0
        for piece, candidate_words in zip(slices, candidates):
            rows = candidate_words.shape[0]
            slice_digests = digests[offset : offset + rows]
            offset += rows
            matches = np.flatnonzero(
                (slice_digests == piece.target_words).all(axis=1)
            )
            seed = (
                words_to_seed(candidate_words[int(matches[0])])
                if matches.size
                else None
            )
            outcomes.append(
                SliceOutcome(
                    key=piece.key,
                    distance=piece.distance,
                    rows=rows,
                    seed=seed,
                    seconds=elapsed * (rows / total_rows),
                )
            )
        return outcomes
