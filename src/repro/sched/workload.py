"""Mixed-depth serving workloads for the scheduler CLI and benchmark.

The scheduler's value proposition is a *tail-latency* story: when
shallow (d <= 2) authentications share a device with deep stragglers,
FIFO makes the shallow requests wait out every deep search queued ahead
of them, while the continuous batcher serves all of them from the same
device batches. Both the ``repro sched`` CLI and
``benchmarks/bench_scheduler.py`` need the same apparatus to show that:
a deterministic mixed-depth request fleet, a FIFO reference run, a
scheduled run, and per-depth latency summaries. It lives here so the two
entry points cannot drift apart.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro._bitutils import SEED_BITS, flip_bits
from repro.analysis.metrics import percentile
from repro.engines.result import SearchEngine
from repro.sched.engine import ScheduledSearchEngine
from repro.sched.errors import RequestShed

__all__ = [
    "WorkloadRequest",
    "RequestOutcome",
    "mixed_workload",
    "run_fifo",
    "run_scheduled",
    "summarize_latencies",
]

#: "Shallow" for reporting purposes: the interactive request depths the
#: paper's threshold comfortably covers on a single device.
SHALLOW_DISTANCE = 2


@dataclass(frozen=True)
class WorkloadRequest:
    """One client's authentication request in a synthetic storm."""

    client_id: str
    base_seed: bytes
    target_digest: bytes
    #: Where the answer actually lies (bits flipped from the base seed).
    planted_distance: int
    #: How deep this request's search is allowed to go.
    max_distance: int
    deadline_seconds: float | None = None


@dataclass(frozen=True)
class RequestOutcome:
    """What happened to one request, on either serving path."""

    client_id: str
    planted_distance: int
    max_distance: int
    latency_seconds: float
    found: bool
    timed_out: bool
    shed: bool
    shed_reason: str = ""


def mixed_workload(
    algo,
    requests: int = 16,
    depths: tuple[int, ...] = (1, 2, 3, 4),
    seed: int = 0,
    deadline_seconds: float | None = None,
) -> list[WorkloadRequest]:
    """A deterministic mixed-depth request fleet.

    Depths cycle round-robin so every run carries the same shallow/deep
    mix; each client's seed is planted at a distinct random location in
    its shell. ``deadline_seconds``, when given, is attached to the
    shallow (d <= 2) requests only — the interactive clients are the
    ones with latency expectations.
    """
    if requests < 1:
        raise ValueError("requests must be positive")
    if not depths or any(d < 0 for d in depths):
        raise ValueError("depths must be non-negative")
    rng = np.random.default_rng(seed)
    fleet = []
    for index in range(requests):
        distance = depths[index % len(depths)]
        base_seed = rng.bytes(SEED_BITS // 8)
        flips = rng.choice(SEED_BITS, size=distance, replace=False)
        client_seed = flip_bits(base_seed, [int(b) for b in flips])
        fleet.append(
            WorkloadRequest(
                client_id=f"wl-{index:04d}",
                base_seed=base_seed,
                target_digest=algo.hash_seed(client_seed),
                planted_distance=distance,
                max_distance=distance,
                deadline_seconds=(
                    deadline_seconds
                    if distance <= SHALLOW_DISTANCE
                    else None
                ),
            )
        )
    return fleet


def run_fifo(
    engine: SearchEngine,
    workload: list[WorkloadRequest],
    time_budget: float,
) -> list[RequestOutcome]:
    """Serve the fleet in submission order on one device (the baseline).

    All requests arrive at t=0; each one's latency includes the time it
    spent queued behind everything submitted before it — exactly what a
    FIFO worker over a single device does to a shallow request stuck
    behind a deep straggler.
    """
    start = time.perf_counter()
    outcomes = []
    for request in workload:
        result = engine.search(
            request.base_seed,
            request.target_digest,
            request.max_distance,
            time_budget=time_budget,
        )
        outcomes.append(
            RequestOutcome(
                client_id=request.client_id,
                planted_distance=request.planted_distance,
                max_distance=request.max_distance,
                latency_seconds=time.perf_counter() - start,
                found=result.found,
                timed_out=result.timed_out,
                shed=False,
            )
        )
    return outcomes


def run_scheduled(
    engine: ScheduledSearchEngine,
    workload: list[WorkloadRequest],
    time_budget: float,
) -> list[RequestOutcome]:
    """Serve the same fleet through the continuous-batching scheduler."""
    start = time.perf_counter()
    tickets = []
    for request in workload:
        try:
            ticket = engine.submit(
                request.base_seed,
                request.target_digest,
                request.max_distance,
                time_budget=time_budget,
                deadline_seconds=request.deadline_seconds,
                client_id=request.client_id,
            )
        except RequestShed as exc:
            tickets.append((request, None, exc))
            continue
        tickets.append((request, ticket, None))
    outcomes = []
    for request, ticket, admission_error in tickets:
        if ticket is None:
            outcomes.append(
                RequestOutcome(
                    client_id=request.client_id,
                    planted_distance=request.planted_distance,
                    max_distance=request.max_distance,
                    latency_seconds=time.perf_counter() - start,
                    found=False,
                    timed_out=False,
                    shed=True,
                    shed_reason=admission_error.reason,
                )
            )
            continue
        try:
            result = ticket.result()
        except RequestShed as exc:
            outcomes.append(
                RequestOutcome(
                    client_id=request.client_id,
                    planted_distance=request.planted_distance,
                    max_distance=request.max_distance,
                    latency_seconds=time.perf_counter() - start,
                    found=False,
                    timed_out=False,
                    shed=True,
                    shed_reason=exc.reason,
                )
            )
            continue
        scheduling = result.scheduling
        finished = time.perf_counter() - start
        if scheduling is not None:
            # The ticket settled on the dispatcher thread; use its own
            # clock (queue + service) rather than when we happened to
            # collect it.
            finished = min(
                finished, scheduling.queue_seconds + scheduling.service_seconds
            )
        outcomes.append(
            RequestOutcome(
                client_id=request.client_id,
                planted_distance=request.planted_distance,
                max_distance=request.max_distance,
                latency_seconds=finished,
                found=result.found,
                timed_out=result.timed_out,
                shed=False,
            )
        )
    return outcomes


def summarize_latencies(outcomes: list[RequestOutcome]) -> dict:
    """Per-class latency percentiles plus outcome counts."""

    def stats(group: list[RequestOutcome]) -> dict:
        if not group:
            return {"count": 0}
        latencies = [o.latency_seconds for o in group]
        return {
            "count": len(group),
            "found": sum(1 for o in group if o.found),
            "timed_out": sum(1 for o in group if o.timed_out),
            "shed": sum(1 for o in group if o.shed),
            "p50_seconds": round(percentile(latencies, 50), 6),
            "p95_seconds": round(percentile(latencies, 95), 6),
            "p99_seconds": round(percentile(latencies, 99), 6),
            "max_seconds": round(max(latencies), 6),
        }

    shallow = [o for o in outcomes if o.max_distance <= SHALLOW_DISTANCE]
    deep = [o for o in outcomes if o.max_distance > SHALLOW_DISTANCE]
    return {
        "all": stats(outcomes),
        "shallow": stats(shallow),
        "deep": stats(deep),
    }
