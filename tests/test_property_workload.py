"""Property-based tests for the workload/queueing machinery."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.analysis.workload import (
    AuthRequest,
    ServerCapacityModel,
    simulate_queue,
)
from repro.runtime.partition import partition_ranks


class TestQueueProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(0.01, 100.0),   # inter-arrival gap
                st.floats(0.001, 5.0),    # service time
            ),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=40)
    def test_waits_are_nonnegative_and_conservative(self, gaps_services):
        arrivals = np.cumsum([g for g, _ in gaps_services])
        requests = [
            AuthRequest(float(a), 1, 0.5) for a in arrivals
        ]
        services = np.array([s for _, s in gaps_services])
        sim = simulate_queue(requests, services)
        assert sim["mean_wait_seconds"] >= 0.0
        assert sim["p95_wait_seconds"] >= sim["mean_wait_seconds"] * 0.0
        assert 0.0 < sim["busy_fraction"] <= 1.0 + 1e-9

    @given(st.floats(0.01, 0.95), st.floats(0.1, 10.0))
    @settings(max_examples=40)
    def test_pk_wait_increases_with_load(self, rho_low, mean_service):
        model = ServerCapacityModel(np.full(50, mean_service))
        rho_high = min(0.99, rho_low + 0.04)
        low = model.estimate(rho_low / mean_service)
        high = model.estimate(rho_high / mean_service)
        assert high.mean_wait_seconds >= low.mean_wait_seconds

    @given(st.floats(0.1, 10.0))
    @settings(max_examples=20)
    def test_stability_boundary(self, mean_service):
        model = ServerCapacityModel(np.full(20, mean_service))
        assert model.estimate(0.99 / mean_service).stable
        assert not model.estimate(1.01 / mean_service).stable


class TestPartitionProperties:
    @given(st.integers(0, 100000), st.integers(1, 200))
    @settings(max_examples=60)
    def test_partition_invariants(self, total, parts):
        ranges = partition_ranks(total, parts)
        assert len(ranges) == parts
        assert ranges[0][0] == 0
        assert ranges[-1][1] == total
        sizes = [b - a for a, b in ranges]
        assert all(size >= 0 for size in sizes)
        assert sum(sizes) == total
        assert max(sizes) - min(sizes) <= 1
        for (a, b), (c, _d) in zip(ranges, ranges[1:]):
            assert b == c
