"""Chaos storms: the acceptance criteria of the resilience layer.

The heavyweight test here runs the full 100-client `lossy-wan` plan
(20% drop, 5% corruption, one device-failure episode) once and asserts
every structural guarantee on that single run.
"""

import pytest

from repro.analysis.metrics import ResilienceReport, percentile
from repro.cli import main
from repro.reliability.chaos import NAMED_PLANS, StormConfig, run_named_storm


TYPED_OUTCOMES = {
    "authenticated",
    "rejected",
    "deadline_exceeded",
    "retries_exhausted",
    "server_busy",
}


@pytest.fixture(scope="module")
def lossy_wan_report() -> ResilienceReport:
    return run_named_storm("lossy-wan", seed=0)


class TestAcceptanceStorm:
    def test_fleet_size_is_at_least_100(self, lossy_wan_report):
        assert lossy_wan_report.clients >= 100

    def test_zero_false_authentications(self, lossy_wan_report):
        assert lossy_wan_report.false_authentications == 0

    def test_every_client_has_a_clean_typed_outcome(self, lossy_wan_report):
        report = lossy_wan_report
        assert set(name for name, _count in report.outcomes) <= TYPED_OUTCOMES
        assert sum(count for _name, count in report.outcomes) == report.clients
        assert report.succeeded + report.failed_clean == report.clients

    def test_most_clients_succeed_despite_the_weather(self, lossy_wan_report):
        assert lossy_wan_report.availability >= 0.8

    def test_faults_were_actually_injected(self, lossy_wan_report):
        injected = dict(lossy_wan_report.faults_injected)
        assert injected.get("drop", 0) > 0
        assert injected.get("corrupt", 0) > 0
        assert lossy_wan_report.device_failures > 0

    def test_breaker_walks_the_full_cycle(self, lossy_wan_report):
        transitions = lossy_wan_report.breaker_transitions
        assert "closed->open" in transitions
        assert "open->half_open" in transitions
        assert "half_open->closed" in transitions
        # The device episode outlives one recovery interval, so at least
        # one half-open probe hits the still-sick device and re-opens.
        assert "half_open->open" in transitions
        assert transitions[0] == "closed->open"
        assert transitions[-1] == "half_open->closed"

    def test_failover_absorbed_traffic_while_open(self, lossy_wan_report):
        assert lossy_wan_report.fallback_searches > 0
        assert lossy_wan_report.primary_searches > 0

    def test_latency_percentiles_ordered(self, lossy_wan_report):
        report = lossy_wan_report
        assert 0 < report.latency_p50 <= report.latency_p95 <= report.latency_max

    def test_render_mentions_the_essentials(self, lossy_wan_report):
        text = lossy_wan_report.render()
        assert "false auths" in text
        assert "breaker transitions" in text
        assert "lossy-wan" in text


class TestReproducibility:
    def test_same_seed_same_report(self):
        first = run_named_storm("smoke", seed=1)
        second = run_named_storm("smoke", seed=1)
        # Dataclass equality covers every field: outcomes, fault
        # schedule, latencies, breaker history.
        assert first == second

    def test_different_seed_different_schedule(self):
        a = run_named_storm("smoke", seed=1, clients=8)
        b = run_named_storm("smoke", seed=2, clients=8)
        assert a.faults_injected != b.faults_injected or a.outcomes != b.outcomes

    def test_clean_plan_all_authenticate(self):
        report = run_named_storm("clean", seed=3, clients=6)
        assert report.succeeded == 6
        assert report.faults_injected == ()
        assert report.breaker_transitions == ()


class TestNamedPlans:
    def test_known_names(self):
        assert {"clean", "lossy-wan", "flaky-device", "smoke"} <= set(NAMED_PLANS)

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown fault plan"):
            run_named_storm("nonexistent")

    def test_cli_choices_match_registry(self):
        # cli.py keeps its --plan choices literal so argument parsing
        # stays import-free; pin the literal to the real registry.
        import inspect

        from repro import cli

        source = inspect.getsource(cli.main)
        for name in NAMED_PLANS:
            assert f'"{name}"' in source

    def test_cli_rejects_unknown_plan(self):
        with pytest.raises(SystemExit):
            main(["chaos", "--plan", "not-a-plan"])

    def test_storm_config_validation(self):
        with pytest.raises(ValueError):
            StormConfig(clients=0)


class TestSchedulerStorm:
    """The smoke fault plan served through the continuous-batching
    scheduler instead of the FIFO worker pool: link-level faults still
    strike, every client still gets a typed outcome, and the false-
    authentication tripwire (now on the key-issuance path) stays at 0.
    """

    @pytest.fixture(scope="class")
    def scheduler_report(self) -> ResilienceReport:
        from repro.reliability.chaos import run_storm

        spec, config = NAMED_PLANS["smoke"]
        config = StormConfig(
            clients=8,
            scheduler=True,
            breaker_recovery_seconds=config.breaker_recovery_seconds,
        )
        # Transport faults only: the scheduler owns its device, so the
        # device-failure episodes of the FIFO plan do not apply.
        from dataclasses import replace as dc_replace

        spec = dc_replace(spec, device_failure_episodes=0)
        return run_storm(spec, seed=3, config=config)

    def test_zero_false_authentications(self, scheduler_report):
        assert scheduler_report.false_authentications == 0

    def test_every_client_has_a_clean_typed_outcome(self, scheduler_report):
        assert set(dict(scheduler_report.outcomes)) <= TYPED_OUTCOMES
        assert (
            sum(dict(scheduler_report.outcomes).values())
            == scheduler_report.clients
        )

    def test_most_clients_authenticate_through_the_scheduler(
        self, scheduler_report
    ):
        assert scheduler_report.succeeded >= scheduler_report.clients // 2

    def test_scheduler_really_ran_the_searches(self, scheduler_report):
        # The telemetry tap hangs off the scheduler's executor in this
        # mode; batches were really hashed there.
        assert scheduler_report.engine_seeds_hashed > 0


class TestPercentile:
    def test_interpolates(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0
        assert percentile(values, 50) == pytest.approx(2.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)


class TestChaosCLI:
    def test_smoke_run_exits_zero(self, capsys):
        exit_code = main(["chaos", "--plan", "smoke", "--seed", "1",
                          "--clients", "6"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "chaos storm" in out
        assert "false auths:         0" in out
