"""PUF substrate: statistical model, TAPKI masking, noise, encrypted DB."""

import numpy as np
import pytest

from repro.puf.image_db import EncryptedImageDatabase
from repro.puf.model import SRAMPuf
from repro.puf.noise import flip_random_bits, inject_noise_to_distance
from repro.puf.ternary import enroll_with_masking


class TestSRAMPuf:
    def test_reference_is_stable(self):
        puf = SRAMPuf(num_cells=1024, seed=1)
        a = puf.reference_bits(0, 256)
        b = puf.reference_bits(0, 256)
        assert (a == b).all()

    def test_reads_are_noisy_but_close(self):
        puf = SRAMPuf(num_cells=1024, seed=2)
        reference = puf.reference_bits(0, 1024)
        distances = [
            int((puf.read(0, 1024).bits != reference).sum()) for _ in range(20)
        ]
        assert max(distances) < 200          # errors are a small minority
        assert sum(distances) > 0            # but noise does occur

    def test_distinct_devices_have_distinct_fingerprints(self):
        a = SRAMPuf(num_cells=512, seed=10).reference_bits(0, 512)
        b = SRAMPuf(num_cells=512, seed=11).reference_bits(0, 512)
        # Independent random references differ in roughly half the cells.
        assert 150 < int((a != b).sum()) < 362

    def test_stable_fraction_controls_noise(self):
        noisy = SRAMPuf(num_cells=4096, stable_fraction=0.5, seed=3)
        quiet = SRAMPuf(num_cells=4096, stable_fraction=0.99, seed=3)
        assert noisy.flip_probability.mean() > quiet.flip_probability.mean()

    def test_window_validation(self):
        puf = SRAMPuf(num_cells=512, seed=0)
        with pytest.raises(ValueError):
            puf.read(500, 100)
        with pytest.raises(ValueError):
            puf.read(0, 0)

    def test_num_cells_multiple_of_8(self):
        with pytest.raises(ValueError):
            SRAMPuf(num_cells=100)

    def test_flip_probability_read_only(self):
        puf = SRAMPuf(num_cells=512, seed=0)
        with pytest.raises(ValueError):
            puf.flip_probability[0] = 0.5

    def test_readout_packing(self):
        puf = SRAMPuf(num_cells=512, seed=0)
        readout = puf.read(0, 256)
        packed = readout.to_bytes()
        assert len(packed) == 32
        assert (np.unpackbits(np.frombuffer(packed, np.uint8)) == readout.bits).all()

    def test_readout_packing_requires_multiple_of_8(self):
        puf = SRAMPuf(num_cells=512, seed=0)
        with pytest.raises(ValueError):
            puf.read(0, 10).to_bytes()


class TestTernaryMasking:
    def test_masks_erratic_cells(self):
        puf = SRAMPuf(num_cells=2048, stable_fraction=0.8, seed=4)
        mask = enroll_with_masking(puf, 0, 2048, reads=48, instability_threshold=0.05)
        usable_p = puf.flip_probability[mask.usable]
        masked_p = puf.flip_probability[~mask.usable]
        assert usable_p.mean() < masked_p.mean()

    def test_masked_selection_reduces_error_rate(self):
        puf = SRAMPuf(num_cells=4096, stable_fraction=0.85, seed=5)
        mask = enroll_with_masking(puf, 0, 4096, reads=48)
        reference = mask.reference_seed_bits(256)
        masked_dists = []
        for _ in range(20):
            bits = mask.select_bits(puf.read(0, 4096).bits, 256)
            masked_dists.append(int((bits != reference).sum()))
        assert np.mean(masked_dists) < 5  # tractable search region

    def test_select_bits_shape_validation(self):
        puf = SRAMPuf(num_cells=512, seed=6)
        mask = enroll_with_masking(puf, 0, 512)
        with pytest.raises(ValueError):
            mask.select_bits(np.zeros(100, dtype=np.uint8), 64)

    def test_select_bits_insufficient_cells(self):
        puf = SRAMPuf(num_cells=512, seed=6)
        mask = enroll_with_masking(puf, 0, 512)
        with pytest.raises(ValueError):
            mask.select_bits(puf.read(0, 512).bits, 10_000)

    def test_enrollment_needs_multiple_reads(self):
        puf = SRAMPuf(num_cells=512, seed=6)
        with pytest.raises(ValueError):
            enroll_with_masking(puf, 0, 512, reads=1)

    def test_instability_estimates_in_range(self):
        puf = SRAMPuf(num_cells=512, seed=7)
        mask = enroll_with_masking(puf, 0, 512, reads=32)
        assert (mask.instability >= 0).all() and (mask.instability <= 0.5).all()


class TestNoiseInjection:
    def test_reaches_exact_target(self, rng):
        reference = rng.integers(0, 2, 256, dtype=np.uint8)
        client = reference.copy()
        noisy = inject_noise_to_distance(client, reference, 5, rng)
        assert int((noisy != reference).sum()) == 5

    def test_tops_up_partial_noise(self, rng):
        reference = rng.integers(0, 2, 256, dtype=np.uint8)
        client = reference.copy()
        client[[3, 10]] ^= 1
        noisy = inject_noise_to_distance(client, reference, 5, rng)
        assert int((noisy != reference).sum()) == 5
        assert (noisy[[3, 10]] != reference[[3, 10]]).all()  # keeps old errors

    def test_leaves_excess_noise_alone(self, rng):
        reference = rng.integers(0, 2, 256, dtype=np.uint8)
        client = reference.copy()
        client[:7] ^= 1
        noisy = inject_noise_to_distance(client, reference, 5, rng)
        assert (noisy == client).all()

    def test_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            inject_noise_to_distance(
                np.zeros(10, np.uint8), np.zeros(12, np.uint8), 2, rng
            )

    def test_flip_random_bits_count(self, rng):
        bits = np.zeros(64, dtype=np.uint8)
        flipped = flip_random_bits(bits, 9, rng)
        assert int(flipped.sum()) == 9

    def test_flip_random_bits_validation(self, rng):
        with pytest.raises(ValueError):
            flip_random_bits(np.zeros(4, np.uint8), 5, rng)
        with pytest.raises(ValueError):
            flip_random_bits(np.zeros(4, np.uint8), -1, rng)


class TestEncryptedImageDatabase:
    @pytest.fixture
    def mask(self):
        puf = SRAMPuf(num_cells=512, seed=8)
        return enroll_with_masking(puf, 0, 512)

    def test_roundtrip(self, mask):
        db = EncryptedImageDatabase(b"k" * 16)
        db.enroll("alice", mask)
        restored = db.lookup("alice")
        assert restored.address == mask.address
        assert (restored.usable == mask.usable).all()
        assert (restored.reference == mask.reference).all()
        assert np.allclose(restored.instability, mask.instability)

    def test_records_are_encrypted_at_rest(self, mask):
        db = EncryptedImageDatabase(b"k" * 16)
        db.enroll("alice", mask)
        ciphertext = db.encrypted_record("alice")
        assert b"reference" not in ciphertext  # JSON keys not visible

    def test_unknown_client(self):
        db = EncryptedImageDatabase(b"k" * 16)
        with pytest.raises(KeyError):
            db.lookup("mallory")

    def test_contains_and_len(self, mask):
        db = EncryptedImageDatabase(b"k" * 16)
        assert "alice" not in db and len(db) == 0
        db.enroll("alice", mask)
        assert "alice" in db and len(db) == 1

    def test_master_key_length(self):
        with pytest.raises(ValueError):
            EncryptedImageDatabase(b"short")

    def test_wrong_key_cannot_decrypt(self, mask):
        db1 = EncryptedImageDatabase(b"k" * 16)
        db1.enroll("alice", mask)
        db2 = EncryptedImageDatabase(b"x" * 16)
        db2._records["alice"] = db1.encrypted_record("alice")
        with pytest.raises(Exception):
            db2.lookup("alice")


class TestImageDatabaseVersionedNonces:
    """CTR nonce-reuse regression: the nonce must rotate with re-enrollment."""

    @pytest.fixture
    def mask(self):
        puf = SRAMPuf(num_cells=512, seed=8)
        return enroll_with_masking(puf, 0, 512)

    def test_re_enroll_rotates_the_keystream(self, mask):
        # With a version-blind nonce, re-enrolling the same plaintext
        # yields the identical ciphertext (and two different plaintexts
        # leak their XOR). The versioned nonce makes both enrollments
        # encrypt under distinct keystreams.
        db = EncryptedImageDatabase(b"k" * 16)
        db.enroll("alice", mask)
        first = db.encrypted_record("alice")
        db.enroll("alice", mask)
        second = db.encrypted_record("alice")
        assert first != second
        assert db.version_of("alice") == 1
        restored = db.lookup("alice")
        assert (restored.reference == mask.reference).all()

    def test_stateless_codec_is_pure_and_version_sensitive(self, mask):
        db = EncryptedImageDatabase(b"k" * 16)
        v0 = db.encrypt_record("alice", mask, 0)
        assert db.encrypt_record("alice", mask, 0) == v0  # deterministic
        assert db.encrypt_record("alice", mask, 1) != v0  # nonce rotated
        assert len(db) == 0  # the codec never touches the store
        restored = db.decrypt_record("alice", v0, 0)
        assert (restored.reference == mask.reference).all()

    def test_codec_rejects_negative_versions(self, mask):
        db = EncryptedImageDatabase(b"k" * 16)
        with pytest.raises(ValueError):
            db.encrypt_record("alice", mask, -1)
        with pytest.raises(ValueError):
            db.decrypt_record("alice", b"\x00", -1)
        with pytest.raises(ValueError):
            db.import_record("alice", b"\x00", -1)

    def test_export_import_is_portable_between_stores(self, mask):
        source = EncryptedImageDatabase(b"k" * 16)
        source.enroll("alice", mask)
        source.enroll("alice", mask)  # bump to version 1
        blob, version = source.export_record("alice")
        peer = EncryptedImageDatabase(b"k" * 16)
        peer.import_record("alice", blob, version)
        assert peer.version_of("alice") == 1
        restored = peer.lookup("alice")
        assert (restored.usable == mask.usable).all()

    def test_snapshot_restore_keeps_versions_and_ciphertext(self, mask):
        db = EncryptedImageDatabase(b"k" * 16)
        db.enroll("alice", mask)
        db.enroll("alice", mask)
        clone = EncryptedImageDatabase.from_snapshot(db.snapshot(), b"k" * 16)
        assert clone.version_of("alice") == 1
        assert clone.encrypted_record("alice") == db.encrypted_record("alice")
        restored = clone.lookup("alice")
        assert (restored.reference == mask.reference).all()

    def test_snapshot_stays_encrypted_and_keyless(self, mask):
        db = EncryptedImageDatabase(b"k" * 16)
        db.enroll("alice", mask)
        snapshot = db.snapshot()
        assert b"reference" not in snapshot
        assert (b"k" * 16) not in snapshot

    def test_legacy_v1_snapshot_loads_at_version_zero(self, mask):
        import json

        db = EncryptedImageDatabase(b"k" * 16)
        legacy_blob = db.encrypt_record("alice", mask, 0)
        legacy = json.dumps(
            {
                "format": "repro-image-db/1",
                "records": {"alice": legacy_blob.hex()},
            }
        ).encode()
        db.restore(legacy)
        assert db.version_of("alice") == 0
        restored = db.lookup("alice")
        assert (restored.reference == mask.reference).all()

    def test_unrecognized_snapshot_format_is_rejected(self):
        import json

        db = EncryptedImageDatabase(b"k" * 16)
        bogus = json.dumps({"format": "repro-image-db/99", "records": {}})
        with pytest.raises(ValueError):
            db.restore(bogus.encode())
