"""Fault injection and resilience: plans, transport faults, retries,
circuit breaker, failover, flaky devices, dead-rank recovery."""

import numpy as np
import pytest

from repro.core import RBCSearchService
from repro.core.protocol import ClientDevice
from repro.devices.flaky import DeviceFailure, FlakyDeviceModel, FlakyEngine
from repro.devices.gpu import GPUModel
from repro.hashes.sha1 import sha1
from repro.net.client import NetworkClient
from repro.net.errors import MessageCorrupted, MessageDropped
from repro.net.messages import (
    AuthenticationResult,
    DigestSubmission,
    HandshakeRequest,
    HandshakeResponse,
)
from repro.net.server import CAServer
from repro.net.transport import US_LINK, InProcessTransport
from repro.reliability.breaker import BreakerState, CircuitBreaker, CircuitOpenError
from repro.reliability.failover import FailoverSearchService
from repro.reliability.faults import (
    MESSAGE_FAULTS,
    FaultPlan,
    FaultSpec,
    ScriptedFaultInjector,
    VirtualClock,
)
from repro.reliability.retry import (
    DeadlineExceeded,
    RetriesExhausted,
    RetryPolicy,
)
from repro.reliability.transport import FaultyTransport
from repro.runtime.cluster import ClusterSearchExecutor, Interconnect
from repro.runtime.executor import BatchSearchExecutor


LOSSY = FaultSpec(
    name="lossy",
    drop_rate=0.2,
    corrupt_rate=0.1,
    duplicate_rate=0.05,
    reorder_rate=0.05,
    latency_spike_rate=0.05,
)


class TestFaultSpec:
    def test_rates_validated(self):
        with pytest.raises(ValueError, match="drop_rate"):
            FaultSpec(drop_rate=1.5)
        with pytest.raises(ValueError, match="sum"):
            FaultSpec(drop_rate=0.6, corrupt_rate=0.5)
        with pytest.raises(ValueError):
            FaultSpec(device_failure_length=0)

    def test_message_fault_rate_totals(self):
        assert LOSSY.message_fault_rate == pytest.approx(0.45)
        assert FaultSpec().message_fault_rate == 0.0


class TestFaultPlanDeterminism:
    def test_same_seed_same_message_schedule(self):
        draws = []
        for _ in range(2):
            injector = FaultPlan(LOSSY, seed=42).transport_injector(3)
            draws.append([injector.next(f"m{i}") for i in range(200)])
        assert draws[0] == draws[1]
        assert any(kind is not None for kind in draws[0])

    def test_streams_are_order_independent(self):
        plan = FaultPlan(LOSSY, seed=7)
        first = [plan.transport_injector(5).next("x") for _ in range(1)]
        plan.transport_injector(0).next("warm")  # unrelated stream
        again = [FaultPlan(LOSSY, seed=7).transport_injector(5).next("x")]
        assert first == again

    def test_different_seeds_diverge(self):
        a = FaultPlan(LOSSY, seed=1).transport_injector(0)
        b = FaultPlan(LOSSY, seed=2).transport_injector(0)
        assert [a.next("m") for _ in range(100)] != [
            b.next("m") for _ in range(100)
        ]

    def test_device_episodes_deterministic_and_contiguous(self):
        spec = FaultSpec(device_failure_episodes=2, device_failure_length=5)
        one = FaultPlan(spec, seed=3).device_injector(horizon=100)
        two = FaultPlan(spec, seed=3).device_injector(horizon=100)
        assert one.episodes == two.episodes
        assert len(one.episodes) == 2
        for lo, hi in one.episodes:
            assert hi - lo == 5
        faults = [one.next() for _ in range(100)]
        assert faults.count("fail") >= 5  # episodes may overlap

    def test_cluster_injector_never_kills_everyone(self):
        spec = FaultSpec(dead_rank_count=10)
        injector = FaultPlan(spec, seed=0).cluster_injector(ranks=4)
        assert len(injector.dead_ranks) == 3
        survivors = set(range(4)) - injector.dead_ranks
        assert all(injector.straggle_factor(r) == 1.0 for r in survivors)

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(LOSSY, seed=-1)


class TestVirtualClock:
    def test_advances_monotonically(self):
        clock = VirtualClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now() == pytest.approx(2.0)
        with pytest.raises(ValueError):
            clock.advance(-1.0)


class TestMessageFraming:
    @pytest.mark.parametrize(
        "message",
        [
            HandshakeRequest(client_id="c0"),
            HandshakeResponse(
                client_id="c0", address=0, window=64,
                usable_mask=HandshakeResponse.pack_usable(
                    np.ones(64, dtype=bool)
                ),
                bit_count=64, hash_name="sha1",
            ),
            DigestSubmission(client_id="c0", digest=sha1(b"seed")),
            AuthenticationResult(
                client_id="c0", authenticated=True, distance=1,
                public_key=b"\x01" * 16, search_seconds=0.25, timed_out=False,
            ),
        ],
    )
    def test_roundtrip(self, message):
        assert type(message).from_bytes(message.to_bytes()) == message

    def test_single_bit_flip_detected(self):
        raw = DigestSubmission(client_id="c0", digest=sha1(b"x")).to_bytes()
        for position in range(0, len(raw), 7):
            corrupted = bytearray(raw)
            corrupted[position] ^= 0x04
            with pytest.raises(MessageCorrupted):
                DigestSubmission.from_bytes(bytes(corrupted))

    def test_wrong_type_rejected(self):
        raw = HandshakeRequest(client_id="c0").to_bytes()
        with pytest.raises(MessageCorrupted, match="expected"):
            DigestSubmission.from_bytes(raw)


class TestFaultyTransport:
    def _transport(self, script):
        return FaultyTransport(
            InProcessTransport(latency=US_LINK), ScriptedFaultInjector(script)
        )

    def test_drop_charges_timeout_and_raises(self):
        transport = self._transport(["drop"])
        with pytest.raises(MessageDropped):
            transport.deliver("msg", b"payload")
        assert transport.elapsed_seconds == pytest.approx(
            US_LINK.timeout_seconds
        )
        assert transport.fault_log == [(0, "msg", "drop")]

    def test_corruption_is_caught_by_framing(self):
        transport = self._transport(["corrupt"])
        raw = HandshakeRequest(client_id="c0").to_bytes()
        delivered = transport.deliver("msg", raw)
        assert delivered != raw
        with pytest.raises(MessageCorrupted):
            HandshakeRequest.from_bytes(delivered)

    def test_duplicate_costs_double(self):
        clean = self._transport([None])
        clean.deliver("msg", b"x" * 100)
        duplicated = self._transport(["duplicate"])
        duplicated.deliver("msg", b"x" * 100)
        assert duplicated.elapsed_seconds == pytest.approx(
            2 * clean.elapsed_seconds
        )
        assert duplicated.messages_delivered == 2

    def test_latency_spike_and_reorder_charge_extra(self):
        spec = FaultSpec(latency_spike_rate=0.0, latency_spike_seconds=1.5)
        injector = ScriptedFaultInjector(["latency-spike", "reorder"])
        injector.spec = spec
        transport = FaultyTransport(InProcessTransport(latency=US_LINK), injector)
        transport.deliver("a", b"x")
        after_spike = transport.elapsed_seconds
        transport.deliver("b", b"x")
        per_message = US_LINK.message_cost(1)
        assert after_spike == pytest.approx(per_message + 1.5)
        assert transport.elapsed_seconds == pytest.approx(
            after_spike + per_message + US_LINK.round_trip_seconds / 2
        )

    def test_reset_clears_everything(self):
        transport = self._transport(["drop"])
        with pytest.raises(MessageDropped):
            transport.deliver("msg", b"x")
        transport.reset()
        assert transport.elapsed_seconds == 0.0
        assert transport.fault_log == []


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            base_backoff_seconds=0.25, backoff_multiplier=2.0,
            max_backoff_seconds=1.0, jitter_fraction=0.0,
        )
        waits = [policy.backoff_seconds(i) for i in range(1, 6)]
        assert waits == [0.25, 0.5, 1.0, 1.0, 1.0]

    def test_jitter_stays_in_band(self):
        policy = RetryPolicy(
            base_backoff_seconds=1.0, jitter_fraction=0.2,
            max_backoff_seconds=1.0,
        )
        rng = np.random.default_rng(0)
        for _ in range(100):
            assert 0.8 <= policy.backoff_seconds(1, rng) <= 1.2

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter_fraction=2.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_multiplier=0.5)


class TestCircuitBreaker:
    def test_full_lifecycle_on_virtual_clock(self):
        clock = VirtualClock()
        breaker = CircuitBreaker(
            failure_threshold=2, recovery_seconds=10.0, clock=clock.now
        )
        assert breaker.state == BreakerState.CLOSED
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == BreakerState.OPEN
        assert not breaker.allow_request()

        clock.advance(10.0)
        assert breaker.state == BreakerState.HALF_OPEN
        assert breaker.allow_request()  # the probe
        breaker.record_failure()  # probe hit a sick backend
        assert breaker.state == BreakerState.OPEN

        clock.advance(10.0)
        assert breaker.allow_request()
        breaker.record_success()
        assert breaker.state == BreakerState.CLOSED
        assert breaker.transition_names() == (
            "closed->open",
            "open->half_open",
            "half_open->open",
            "open->half_open",
            "half_open->closed",
        )

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == BreakerState.CLOSED

    def test_half_open_admits_limited_probes(self):
        clock = VirtualClock()
        breaker = CircuitBreaker(
            failure_threshold=1, recovery_seconds=1.0,
            half_open_probes=1, clock=clock.now,
        )
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow_request()
        assert not breaker.allow_request()  # only one probe at a time
        assert breaker.calls_refused >= 1

    def test_call_wraps_and_raises_when_open(self):
        breaker = CircuitBreaker(failure_threshold=1)
        with pytest.raises(RuntimeError, match="boom"):
            breaker.call(lambda: (_ for _ in ()).throw(RuntimeError("boom")))
        with pytest.raises(CircuitOpenError):
            breaker.call(lambda: "never runs")
        assert breaker.failures_recorded == 1


class _ExplodingEngine:
    batch_size = 4096

    def __init__(self, failures: int):
        self.remaining = failures
        self.calls = 0

    def search(self, base_seed, target_digest, max_distance, time_budget=None):
        self.calls += 1
        if self.remaining > 0:
            self.remaining -= 1
            raise DeviceFailure("exploding", self.calls - 1)
        return BatchSearchExecutor("sha1", batch_size=4096).search(
            base_seed, target_digest, max_distance, time_budget=time_budget
        )


class TestFailoverSearchService:
    def _search_args(self):
        seed = b"\x5a" * 32
        return seed, sha1(seed)

    def test_healthy_primary_serves(self):
        service = FailoverSearchService(
            BatchSearchExecutor("sha1"), BatchSearchExecutor("sha1"),
            max_distance=1,
        )
        seed, digest = self._search_args()
        result = service.find_seed(seed, digest)
        assert result.found and service.primary_searches == 1
        assert service.fallback_searches == 0

    def test_primary_failure_falls_back_and_trips_breaker(self):
        clock = VirtualClock()
        breaker = CircuitBreaker(
            failure_threshold=2, recovery_seconds=5.0, clock=clock.now
        )
        service = FailoverSearchService(
            _ExplodingEngine(failures=2), BatchSearchExecutor("sha1"),
            breaker, max_distance=1,
        )
        seed, digest = self._search_args()
        assert service.find_seed(seed, digest).found
        assert service.find_seed(seed, digest).found
        assert breaker.state == BreakerState.OPEN
        assert service.fallback_searches == 2
        # Open breaker: primary is skipped entirely.
        primary = service.primary
        assert service.find_seed(seed, digest).found
        assert primary.calls == 2
        assert service.engine is service.fallback

    def test_recovered_device_closes_breaker(self):
        clock = VirtualClock()
        breaker = CircuitBreaker(
            failure_threshold=1, recovery_seconds=5.0, clock=clock.now
        )
        service = FailoverSearchService(
            _ExplodingEngine(failures=1), BatchSearchExecutor("sha1"),
            breaker, max_distance=1,
        )
        seed, digest = self._search_args()
        service.find_seed(seed, digest)  # trips open
        clock.advance(5.0)
        assert service.find_seed(seed, digest).found  # half-open probe
        assert breaker.state == BreakerState.CLOSED
        assert service.engine is service.primary


class TestFlakyDeviceModel:
    def test_scheduled_failure_raises(self):
        spec = FaultSpec(device_failure_episodes=1, device_failure_length=3)
        injector = FaultPlan(spec, seed=5).device_injector(horizon=20)
        model = FlakyDeviceModel(GPUModel(), injector)
        lo, _hi = injector.episodes[0]
        for _ in range(lo):
            assert model.search_time("sha1", 2) > 0
        with pytest.raises(DeviceFailure):
            model.search_time("sha1", 2)
        assert model.failures_injected == 1

    def test_slowdown_stretches_time_and_energy(self):
        spec = FaultSpec(device_slow_rate=1.0, device_slow_factor=4.0)
        injector = FaultPlan(spec, seed=0).device_injector(horizon=10)
        flaky = FlakyDeviceModel(GPUModel(), injector)
        baseline = GPUModel().simulate_search("sha1", 3)
        throttled = flaky.simulate_search("sha1", 3)
        assert throttled.search_seconds == pytest.approx(
            4.0 * baseline.search_seconds
        )
        assert throttled.energy_joules == pytest.approx(
            4.0 * baseline.energy_joules
        )
        assert "throttled" in throttled.device

    def test_flaky_engine_fails_before_searching(self):
        spec = FaultSpec(device_failure_episodes=1, device_failure_length=2)
        injector = FaultPlan(spec, seed=2).device_injector(horizon=10)
        engine = FlakyEngine(BatchSearchExecutor("sha1"), injector)
        seed = b"\x11" * 32
        lo, hi = injector.episodes[0]
        outcomes = []
        for _ in range(hi + 1):
            try:
                engine.search(seed, sha1(seed), 0)
                outcomes.append("ok")
            except DeviceFailure:
                outcomes.append("fail")
        assert outcomes[lo:hi] == ["fail"] * (hi - lo)
        assert "ok" in outcomes


class TestNetworkClientRetries:
    def _client_and_server(self, script, authority_fixture, **client_kwargs):
        authority, client, mask = authority_fixture
        transport = FaultyTransport(
            InProcessTransport(latency=US_LINK), ScriptedFaultInjector(script)
        )
        network_client = NetworkClient(
            client, transport, reference_mask=mask, **client_kwargs
        )
        return network_client, CAServer(authority), transport

    def test_recovers_after_drops(self, small_authority):
        # First round dies on the handshake, second succeeds.
        network_client, server, transport = self._client_and_server(
            ["drop"], small_authority,
            retry_policy=RetryPolicy(max_attempts=3, jitter_fraction=0.0),
        )
        result = network_client.authenticate(server)
        assert result.authenticated
        assert network_client.last_attempts == 2
        # The dropped message's timeout was charged to the clock.
        assert transport.elapsed_seconds > US_LINK.timeout_seconds

    def test_corrupted_frame_triggers_retry(self, small_authority):
        network_client, server, _ = self._client_and_server(
            ["corrupt"], small_authority,
            retry_policy=RetryPolicy(max_attempts=3, jitter_fraction=0.0),
        )
        assert network_client.authenticate(server).authenticated

    def test_retries_exhausted_is_typed(self, small_authority):
        network_client, server, _ = self._client_and_server(
            ["drop"] * 20, small_authority,
            retry_policy=RetryPolicy(max_attempts=3, jitter_fraction=0.0),
        )
        with pytest.raises(RetriesExhausted) as excinfo:
            network_client.authenticate(server)
        assert excinfo.value.attempts == 3
        assert isinstance(excinfo.value.last_error, MessageDropped)

    def test_deadline_exceeded_is_typed(self, small_authority):
        network_client, server, _ = self._client_and_server(
            ["drop"] * 20, small_authority,
            retry_policy=RetryPolicy(
                max_attempts=10, jitter_fraction=0.0,
                deadline_seconds=3.0,
            ),
        )
        with pytest.raises(DeadlineExceeded):
            network_client.authenticate(server)

    def test_backoff_charged_to_virtual_clock(self, small_authority):
        with_backoff, server, transport = self._client_and_server(
            ["drop"], small_authority,
            retry_policy=RetryPolicy(
                max_attempts=3, base_backoff_seconds=0.5, jitter_fraction=0.0
            ),
        )
        with_backoff.authenticate(server)
        charged = [
            seconds for label, _size, seconds in transport.log
            if label == "retry-backoff"
        ]
        assert charged == [pytest.approx(0.5)]

    def test_default_policy_matches_legacy_max_attempts(self, small_authority):
        authority, client, mask = small_authority
        network_client = NetworkClient(
            client, InProcessTransport(latency=US_LINK),
            reference_mask=mask, max_attempts=2,
        )
        assert network_client.retry_policy.max_attempts == 2
        assert network_client.retry_policy.base_backoff_seconds == 0.0


class TestClusterFaults:
    def _cheap_cluster(self, ranks, injector=None):
        return ClusterSearchExecutor(
            ranks, "sha1", batch_size=2048,
            interconnect=Interconnect(),
            fault_injector=injector,
        )

    def _target(self, distance=1):
        base = b"\x33" * 32
        if distance == 0:
            return base, sha1(base)
        flipped = bytearray(base)
        flipped[0] ^= 0x01
        return base, sha1(bytes(flipped))

    class _Faults:
        def __init__(self, dead=(), stragglers=None):
            self.dead_ranks = frozenset(dead)
            self._stragglers = dict(stragglers or {})

        @property
        def straggler_ranks(self):
            return tuple(sorted(self._stragglers))

        def straggle_factor(self, rank):
            return self._stragglers.get(rank, 1.0)

    def test_dead_rank_slices_recovered(self):
        base, digest = self._target(distance=1)
        healthy = self._cheap_cluster(3).search(base, digest, 1)
        assert healthy.found
        owner = healthy.finder_rank
        # Kill the rank that found it: survivors must recover the slice.
        result = self._cheap_cluster(
            3, self._Faults(dead=[owner])
        ).search(base, digest, 1)
        assert result.found
        assert result.seed == healthy.seed
        assert result.finder_rank != owner
        assert result.dead_ranks == (owner,)
        assert result.recovery_seconds > 0.0
        assert result.wall_seconds > healthy.wall_seconds

    def test_dead_rank_zero_transfers_distance_zero(self):
        base, digest = self._target(distance=0)
        result = self._cheap_cluster(
            3, self._Faults(dead=[0])
        ).search(base, digest, 1)
        assert result.found and result.distance == 0
        assert result.finder_rank != 0

    def test_straggler_slows_wall_time(self):
        base, digest = self._target(distance=1)
        healthy = self._cheap_cluster(2).search(base, digest, 1)
        finder = healthy.finder_rank
        slowed = self._cheap_cluster(
            2, self._Faults(stragglers={finder: 50.0})
        ).search(base, digest, 1)
        assert slowed.found
        assert slowed.straggler_ranks == (finder,)
        # Wall time includes the straggled finder's stretched elapsed time.
        assert slowed.wall_seconds >= slowed.per_rank_seconds[finder]
        assert slowed.per_rank_seconds[finder] > 0.0

    def test_whole_cluster_dead_raises(self):
        with pytest.raises(RuntimeError, match="surviving"):
            self._cheap_cluster(
                2, self._Faults(dead=[0, 1])
            ).search(b"\x00" * 32, sha1(b"\x00" * 32), 1)

    def test_per_rank_accounting_marks_dead_ranks(self):
        base, digest = self._target(distance=1)
        result = self._cheap_cluster(
            3, self._Faults(dead=[1])
        ).search(base, digest, 1)
        assert result.per_rank_hashed[1] == 0
        assert result.per_rank_seconds[1] == 0.0


class TestSessionNoncePreservedOnBackendFailure:
    def test_transient_failure_does_not_burn_nonce(self):
        from repro import quick_setup
        from repro.net.session import SecureClientSession, SessionManager

        mac_key = b"enrollment-secret-0!"
        authority, client, mask = quick_setup(
            seed=5, max_distance=1, noise_target_distance=1
        )
        manager = SessionManager(authority, rng=np.random.default_rng(0))
        manager.install_mac_key("client-0", mac_key)
        session = SecureClientSession(client, mac_key)
        challenge = manager.issue_challenge("client-0")
        digest = session.respond(challenge, reference_mask=mask)

        original = manager._nonce_bound_search
        calls = {"n": 0}

        def failing_once(client_id, nonce, bound_digest):
            calls["n"] += 1
            if calls["n"] == 1:
                raise DeviceFailure("sim", 0)
            return original(client_id, nonce, bound_digest)

        manager._nonce_bound_search = failing_once
        try:
            with pytest.raises(DeviceFailure):
                manager.accept_digest("client-0", challenge.nonce, digest)
            # The nonce survived the backend failure: a straight retry
            # with the same challenge succeeds instead of being treated
            # as a replay.
            result = manager.accept_digest(
                "client-0", challenge.nonce, digest
            )
        finally:
            manager._nonce_bound_search = original
        assert result.authenticated
