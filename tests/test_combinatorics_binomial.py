"""Tests for binomial math and the paper's Equations 1-3 / Table 1."""

import math

import pytest

from repro.combinatorics.binomial import (
    average_seed_count,
    binomial,
    binomial_table,
    cumulative_ball_size,
    exhaustive_seed_count,
)


class TestBinomial:
    def test_matches_math_comb(self):
        for n in range(0, 30):
            for k in range(0, n + 1):
                assert binomial(n, k) == math.comb(n, k)

    def test_out_of_range_is_zero(self):
        assert binomial(5, 6) == 0
        assert binomial(5, -1) == 0
        assert binomial(-1, 0) == 0

    def test_large_exact(self):
        assert binomial(256, 5) == math.comb(256, 5)
        assert binomial(256, 128) == math.comb(256, 128)

    def test_table_matches_function(self):
        table = binomial_table(20, 6)
        for n in range(21):
            for k in range(7):
                assert table[n, k] == binomial(n, k)

    def test_table_uint64_dtype(self):
        import numpy as np

        table = binomial_table(256, 5, dtype=np.uint64)
        assert int(table[256, 5]) == math.comb(256, 5)


class TestSearchSpaces:
    """The exact values of the paper's Table 1."""

    def test_exhaustive_d1(self):
        # Table 1 lists 256 for d=1 (the paper counts the d=1 shell).
        assert exhaustive_seed_count(1) == 1 + 256

    @pytest.mark.parametrize(
        "d,paper_magnitude",
        [(2, 3.3e4), (3, 2.8e6), (4, 1.8e8), (5, 9.0e9)],
    )
    def test_exhaustive_matches_table1(self, d, paper_magnitude):
        assert exhaustive_seed_count(d) == pytest.approx(paper_magnitude, rel=0.05)

    @pytest.mark.parametrize(
        "d,paper_magnitude",
        [(2, 1.7e4), (3, 1.4e6), (4, 9.0e7), (5, 4.6e9)],
    )
    def test_average_matches_table1(self, d, paper_magnitude):
        assert average_seed_count(d) == pytest.approx(paper_magnitude, rel=0.05)

    def test_average_d1(self):
        # a(1) = C(256,0) + C(256,1)/2 = 1 + 128 = 129 (Table 1: 129).
        assert average_seed_count(1) == 129

    def test_average_below_exhaustive(self):
        for d in range(1, 8):
            assert average_seed_count(d) < exhaustive_seed_count(d)

    def test_average_above_previous_exhaustive(self):
        for d in range(2, 8):
            assert average_seed_count(d) > exhaustive_seed_count(d - 1)

    def test_exact_d5_value(self):
        expected = sum(math.comb(256, i) for i in range(6))
        assert exhaustive_seed_count(5) == expected == 8987138113

    def test_ball_size_full_space(self):
        assert cumulative_ball_size(10, 10) == 1024

    def test_ball_size_validation(self):
        with pytest.raises(ValueError):
            cumulative_ball_size(10, -1)

    def test_average_requires_positive_d(self):
        with pytest.raises(ValueError):
            average_seed_count(0)
