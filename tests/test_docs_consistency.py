"""Documentation consistency checks — docs cannot rot silently.

DESIGN.md's per-experiment index, the README's bench table, and the
benchmarks directory must agree; every example the README lists must
exist; EXPERIMENTS.md must mention every bench's experiment.
"""

import pathlib
import re

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def design_text():
    return (REPO / "DESIGN.md").read_text()


@pytest.fixture(scope="module")
def readme_text():
    return (REPO / "README.md").read_text()


class TestDesignIndex:
    def test_every_indexed_bench_exists(self, design_text):
        for match in re.finditer(r"benchmarks/(bench_\w+\.py)", design_text):
            assert (REPO / "benchmarks" / match.group(1)).is_file(), match.group(0)

    def test_every_bench_file_is_indexed(self, design_text):
        for path in (REPO / "benchmarks").glob("bench_*.py"):
            assert path.name in design_text, f"{path.name} missing from DESIGN.md"

    def test_inventory_mentions_every_subpackage(self, design_text):
        src = REPO / "src" / "repro"
        for package_dir in src.iterdir():
            if package_dir.is_dir() and (package_dir / "__init__.py").exists():
                assert f"repro.{package_dir.name}" in design_text, package_dir.name


class TestReadme:
    def test_listed_examples_exist(self, readme_text):
        for match in re.finditer(r"`(\w+\.py)`", readme_text):
            name = match.group(1)
            if (REPO / "examples" / name).exists():
                continue
            # Only example scripts are referenced with bare .py names.
            assert not name.startswith(("quickstart", "iot", "accel", "seed",
                                        "security", "distributed", "secure",
                                        "capacity", "session")), name

    def test_all_examples_are_listed(self, readme_text):
        for path in (REPO / "examples").glob("*.py"):
            assert path.name in readme_text, f"{path.name} missing from README"

    def test_bench_table_complete(self, readme_text):
        for path in (REPO / "benchmarks").glob("bench_*.py"):
            assert path.stem in readme_text, f"{path.stem} missing from README"

    def test_license_file_exists(self, readme_text):
        assert "MIT" in readme_text
        assert (REPO / "LICENSE").is_file()


class TestExperimentsDoc:
    def test_mentions_every_bench(self):
        text = (REPO / "EXPERIMENTS.md").read_text()
        for path in (REPO / "benchmarks").glob("bench_*.py"):
            assert path.name in text, f"{path.name} missing from EXPERIMENTS.md"

    def test_exact_seed_counts_are_correct(self):
        """The numbers quoted in EXPERIMENTS.md must match the code."""
        from repro.combinatorics.binomial import (
            average_seed_count,
            exhaustive_seed_count,
        )

        text = (REPO / "EXPERIMENTS.md").read_text()
        assert f"{exhaustive_seed_count(5):,}" in text
        assert f"{average_seed_count(5):,}" in text
