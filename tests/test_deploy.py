"""Deployment harness: framing, sockets, WAN shim, supervisor, storms.

Covers the wire layer (incremental CRC-frame reassembly under arbitrary
partial-read boundaries, bounded length prefixes, the admin metrics
message family), socket<->in-process byte equivalence on the full
message matrix, deterministic WAN emulation, real-process supervision
(readiness gating, restart, SIGTERM teardown), the signal-safety
regression (SIGTERM during an in-flight search must drain typed, never
hang), and a miniature end-to-end lan storm over real OS processes.
"""

from __future__ import annotations

import json
import random
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro import quick_setup
from repro.deploy.enrollment import (
    VerifyingAuthority,
    build_client_device,
    build_fleet_record,
)
from repro.deploy.loadgen import (
    classify_failure,
    spec_from_json,
    spec_to_json,
)
from repro.deploy.storm import run_profile
from repro.deploy.supervisor import (
    ProcessDied,
    ProcessSupervisor,
    RestartBudgetExhausted,
    RestartPolicy,
)
from repro.deploy.topology import TopologySpec
from repro.deploy.trace import generate_trace
from repro.deploy.wan import WAN_PROFILES, build_shim
from repro.net.client import NetworkClient
from repro.net.concurrent import ConcurrentCAServer
from repro.net.errors import (
    ConnectionLost,
    FrameTooLarge,
    MessageCorrupted,
    MessageDropped,
    ServerBusy,
)
from repro.net.messages import (
    FRAME_HEADER_BYTES,
    AuthenticationResult,
    DigestSubmission,
    ErrorReply,
    FrameDecoder,
    HandshakeRequest,
    HandshakeResponse,
    MetricsRequest,
    MetricsSnapshot,
    encode_frame,
    peek_frame_kind,
)
from repro.net.server import CAServer
from repro.net.sockets import (
    RemoteCAServer,
    SocketCAServer,
    SocketTransport,
    error_reply_for,
)
from repro.net.transport import InProcessTransport
from repro.reliability.retry import RetriesExhausted
from repro.sched.errors import RequestShed


def _child_env() -> dict[str, str]:
    import os

    import repro

    src = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    env["PYTHONPATH"] = src
    return env


# ---------------------------------------------------------------------------
# Frame reassembly


class TestFrameDecoder:
    def _sample_frames(self) -> list[bytes]:
        return [
            HandshakeRequest(client_id="dep-0001").to_bytes(),
            DigestSubmission(client_id="dep-0001", digest=b"\x01" * 32).to_bytes(),
            MetricsRequest().to_bytes(),
            ErrorReply(kind="busy", detail="queue full").to_bytes(),
            b"x",  # minimal 1-byte body
            b"y" * 4096,
        ]

    def test_fuzzed_chunk_boundaries(self):
        """Reassembly is exact for every partial-read pattern."""
        frames = self._sample_frames()
        stream = b"".join(encode_frame(f) for f in frames)
        rng = np.random.default_rng(1234)
        for trial in range(50):
            decoder = FrameDecoder()
            out: list[bytes] = []
            position = 0
            while position < len(stream):
                # Chunk sizes from 1 byte to several frames at once.
                size = int(rng.integers(1, 1500))
                out.extend(decoder.feed(stream[position : position + size]))
                position += size
            assert out == frames, f"trial {trial} mismatched"
            assert decoder.pending_bytes == 0
            assert decoder.frames_decoded == len(frames)

    def test_byte_at_a_time_and_torn_length_prefix(self):
        frames = self._sample_frames()
        stream = b"".join(encode_frame(f) for f in frames)
        decoder = FrameDecoder()
        out = []
        for i in range(len(stream)):
            out.extend(decoder.feed(stream[i : i + 1]))
        assert out == frames
        # A torn prefix alone yields nothing and buffers correctly.
        tear = FrameDecoder()
        assert tear.feed(encode_frame(b"abc")[: FRAME_HEADER_BYTES - 1]) == []
        assert tear.pending_bytes == FRAME_HEADER_BYTES - 1

    def test_interleaved_connections_stay_independent(self):
        """Two decoders fed interleaved chunks never cross-contaminate."""
        frames_a = [b"conn-a-" + bytes([i]) * 64 for i in range(4)]
        frames_b = [b"conn-b-" + bytes([i]) * 256 for i in range(4)]
        stream_a = b"".join(encode_frame(f) for f in frames_a)
        stream_b = b"".join(encode_frame(f) for f in frames_b)
        dec_a, dec_b = FrameDecoder(), FrameDecoder()
        out_a: list[bytes] = []
        out_b: list[bytes] = []
        rng = np.random.default_rng(7)
        pos_a = pos_b = 0
        while pos_a < len(stream_a) or pos_b < len(stream_b):
            size = int(rng.integers(1, 97))
            if (rng.random() < 0.5 and pos_a < len(stream_a)) or pos_b >= len(
                stream_b
            ):
                out_a.extend(dec_a.feed(stream_a[pos_a : pos_a + size]))
                pos_a += size
            else:
                out_b.extend(dec_b.feed(stream_b[pos_b : pos_b + size]))
                pos_b += size
        assert out_a == frames_a
        assert out_b == frames_b

    def test_oversized_prefix_is_typed_before_allocation(self):
        decoder = FrameDecoder(max_frame_bytes=1024)
        header = (4096).to_bytes(4, "big")
        with pytest.raises(FrameTooLarge) as excinfo:
            decoder.feed(header + b"garbage")
        assert excinfo.value.claimed == 4096
        assert excinfo.value.limit == 1024
        assert isinstance(excinfo.value, MessageCorrupted)
        # Poisoned: the stream lost sync, further input is refused.
        with pytest.raises(MessageCorrupted):
            decoder.feed(b"more")

    def test_zero_length_prefix_is_corrupt(self):
        decoder = FrameDecoder()
        with pytest.raises(MessageCorrupted):
            decoder.feed(b"\x00\x00\x00\x00")

    def test_encode_frame_bounds(self):
        with pytest.raises(ValueError):
            encode_frame(b"")
        with pytest.raises(FrameTooLarge):
            encode_frame(b"z" * (1 << 21))
        framed = encode_frame(b"abc")
        assert framed == b"\x00\x00\x00\x03abc"


# ---------------------------------------------------------------------------
# Admin message family


class TestMetricsMessages:
    def test_metrics_snapshot_round_trip(self):
        snapshot = MetricsSnapshot(
            counters={"completed": 3.0, "authenticated": 2.0},
            shed_reasons={"deadline": 1},
            tenants={"acme": {"completed": 1.0}},
            false_authentications=1,
        )
        parsed = MetricsSnapshot.from_bytes(snapshot.to_bytes())
        assert parsed == snapshot

    def test_optional_fields_omitted_on_wire(self):
        """PR 7's omitted-field contract: empty/zero fields leave no bytes."""
        minimal = MetricsSnapshot(counters={"completed": 1.0})
        body = json.loads(minimal.to_bytes().decode())
        assert "shed_reasons" not in body
        assert "tenants" not in body
        assert "false_authentications" not in body
        assert MetricsSnapshot.from_bytes(minimal.to_bytes()) == minimal
        request = MetricsRequest()
        assert "include_tenants" not in json.loads(request.to_bytes().decode())
        assert MetricsRequest.from_bytes(request.to_bytes()) == request
        tenanted = MetricsRequest(include_tenants=True)
        assert json.loads(tenanted.to_bytes().decode())["include_tenants"] is True

    def test_error_reply_round_trip_and_kinds(self):
        reply = ErrorReply(kind="shed", reason="deadline", detail="too slow")
        assert ErrorReply.from_bytes(reply.to_bytes()) == reply
        with pytest.raises(ValueError):
            ErrorReply(kind="nonsense")
        with pytest.raises(RequestShed):
            from repro.net.sockets import raise_error_reply

            raise_error_reply(reply)

    def test_error_reply_for_maps_admission_failures(self):
        assert error_reply_for(RuntimeError("queue full")).kind == "busy"
        assert error_reply_for(RequestShed("deadline")).kind == "shed"
        assert error_reply_for(MessageCorrupted("bad")).kind == "corrupt"
        assert error_reply_for(ValueError("x")).kind == "error"

    def test_peek_frame_kind(self):
        assert peek_frame_kind(MetricsRequest().to_bytes()) == "metrics_request"
        with pytest.raises(MessageCorrupted):
            peek_frame_kind(b"\xff\xfe not json")
        with pytest.raises(MessageCorrupted):
            peek_frame_kind(b'{"no_type": 1}')


# ---------------------------------------------------------------------------
# Socket <-> in-process equivalence


class TestSocketEquivalence:
    def test_full_message_matrix_over_the_wire(self):
        """Every request frame round-trips the socket byte-identically."""
        authority, _client, _mask = quick_setup(
            seed=3, hash_name="sha1", max_distance=1, noise_target_distance=1
        )
        server = SocketCAServer(CAServer(authority))
        host, port = server.start()
        try:
            transport = SocketTransport(host, port)
            # Handshake: the reply must parse as exactly the frame the
            # local CAServer would have produced.
            request = HandshakeRequest(client_id="client-0")
            raw = transport.request("handshake-request", request.to_bytes())
            local = CAServer(authority).handle_handshake(request)
            assert HandshakeResponse.from_bytes(raw) == local
            assert raw == local.to_bytes()
            # Metrics on a plain CAServer: empty but well-formed.
            raw = transport.request("metrics", MetricsRequest().to_bytes())
            assert MetricsSnapshot.from_bytes(raw).counters == {}
            # Unserveable frame type -> typed corrupt refusal.
            raw = transport.request(
                "bogus", AuthenticationResult(
                    client_id="client-0", authenticated=False, distance=None,
                    public_key=None, search_seconds=0.0, timed_out=False,
                ).to_bytes(),
            )
            assert peek_frame_kind(raw) == "error_reply"
            assert ErrorReply.from_bytes(raw).kind == "corrupt"
            transport.close()
        finally:
            server.close()

    def test_network_client_agrees_with_in_process_path(self):
        """The same device authenticates identically over both transports."""
        seed = 11
        authority, client_device, mask = quick_setup(
            seed=seed, hash_name="sha1", max_distance=2,
            noise_target_distance=2,
        )
        in_process = NetworkClient(
            client_device, InProcessTransport(), reference_mask=mask,
            rng=np.random.default_rng(0),
        )
        local_result = in_process.authenticate(CAServer(authority))

        # Fresh identical world for the socket path (the PUF rng advanced).
        authority2, client_device2, mask2 = quick_setup(
            seed=seed, hash_name="sha1", max_distance=2,
            noise_target_distance=2,
        )
        server = SocketCAServer(CAServer(authority2))
        host, port = server.start()
        try:
            transport = SocketTransport(host, port)
            remote = NetworkClient(
                client_device2, transport, reference_mask=mask2,
                rng=np.random.default_rng(0),
            )
            socket_result = remote.authenticate(RemoteCAServer(transport))
            transport.close()
        finally:
            server.close()
        assert socket_result.authenticated and local_result.authenticated
        assert socket_result.distance == local_result.distance
        assert socket_result.client_id == local_result.client_id
        # Both paths issue a key derived from the same found seed.
        assert socket_result.public_key == local_result.public_key

    def test_connection_refused_is_typed(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        _, dead_port = probe.getsockname()
        probe.close()
        transport = SocketTransport(
            "127.0.0.1", dead_port, connect_timeout_seconds=1.0
        )
        with pytest.raises(ConnectionLost):
            transport.request("x", b"payload")


# ---------------------------------------------------------------------------
# WAN emulation


class TestWanShim:
    def test_profiles_validate(self):
        assert set(WAN_PROFILES) == {"lan", "wan", "lossy-wan"}
        for profile in WAN_PROFILES.values():
            assert profile.one_way_seconds >= 0

    def test_same_seed_same_faults(self):
        sleeps_a: list[float] = []
        sleeps_b: list[float] = []
        shim_a = build_shim("lossy-wan", seed=5, link_index=2,
                            sleep=sleeps_a.append)
        shim_b = build_shim("lossy-wan", seed=5, link_index=2,
                            sleep=sleeps_b.append)
        payload = b"p" * 128
        for shim, sink in ((shim_a, sleeps_a), (shim_b, sleeps_b)):
            for i in range(60):
                try:
                    shim.apply(f"frame-{i}", payload)
                except MessageDropped:
                    pass
        assert shim_a.fault_log == shim_b.fault_log
        assert sleeps_a == sleeps_b
        assert shim_a.fault_log, "lossy-wan must actually fault frames"

    def test_different_links_draw_different_streams(self):
        shim_a = build_shim("lossy-wan", seed=5, link_index=0, sleep=lambda _s: None)
        shim_b = build_shim("lossy-wan", seed=5, link_index=1, sleep=lambda _s: None)
        def faults(shim):
            log = []
            for i in range(80):
                try:
                    shim.apply(f"frame-{i}", b"q" * 64)
                except MessageDropped:
                    pass
            return shim.fault_log
        assert faults(shim_a) != faults(shim_b)

    def test_drop_raises_typed_after_bounded_wait(self):
        slept: list[float] = []
        shim = build_shim("lossy-wan", seed=1, link_index=0, sleep=slept.append)
        raised = False
        for i in range(200):
            try:
                shim.apply(f"frame-{i}", b"z" * 32)
            except MessageDropped:
                raised = True
                break
        assert raised, "an 8% drop rate must fire within 200 frames"
        profile = WAN_PROFILES["lossy-wan"]
        assert slept[-1] == pytest.approx(profile.drop_wait_seconds)

    def test_corrupt_flips_bytes_caught_by_crc(self):
        shim = build_shim("lossy-wan", seed=3, link_index=0, sleep=lambda _s: None)
        original = HandshakeRequest(client_id="dep-0000").to_bytes()
        for i in range(300):
            mutated = None
            try:
                mutated = shim.apply(f"frame-{i}", original)
            except MessageDropped:
                continue
            if mutated != original:
                with pytest.raises(MessageCorrupted):
                    HandshakeRequest.from_bytes(mutated)
                return
        pytest.fail("a 4% corrupt rate must fire within 300 frames")


# ---------------------------------------------------------------------------
# Topology + trace + enrollment determinism


class TestTopologyAndTrace:
    def test_spec_validation_and_json_round_trip(self):
        spec = TopologySpec(tenants=("acme", "globex"))
        assert spec_from_json(spec_to_json(spec)) == spec
        with pytest.raises(ValueError):
            TopologySpec(wan_profile="dsl")
        with pytest.raises(ValueError):
            TopologySpec(engine="quantum")
        with pytest.raises(ValueError):
            TopologySpec(servers=0)
        assert spec.with_profile("wan").wan_profile == "wan"
        assert "lan" in spec.describe()

    def test_trace_is_deterministic_heavy_tailed_and_diurnal(self):
        spec = TopologySpec(clients=6, max_distance=3)
        trace = generate_trace(spec, seed=9, requests=400,
                               duration_seconds=60.0)
        assert trace == generate_trace(spec, 9, 400, 60.0)
        hist = trace.depth_histogram()
        # Heavy tail: shallow dominates, the deepest shell persists.
        assert hist[0] > hist[3] > 0
        assert hist[0] > 400 // 3
        # Diurnal: the middle half-hour carries more than the edges.
        offsets = [e.offset_seconds for e in trace.entries]
        mid = sum(1 for o in offsets if 20.0 <= o <= 40.0)
        edges = sum(1 for o in offsets if o < 10.0 or o > 50.0)
        assert mid > edges
        assert offsets == sorted(offsets)
        # Slot partition covers the whole trace exactly once.
        a = trace.for_slots({i for i in range(6) if i % 2 == 0})
        b = trace.for_slots({i for i in range(6) if i % 2 == 1})
        assert len(a) + len(b) == len(trace.entries)

    def test_cross_process_enrollment_contract(self):
        """Server-side and client-side fleet builds derive the same mask."""
        cid_a, _puf_a, mask_a = build_fleet_record(seed=4, index=2,
                                                   num_cells=1024)
        cid_b, _puf_b, mask_b = build_fleet_record(seed=4, index=2,
                                                   num_cells=1024)
        assert cid_a == cid_b == "dep-0002"
        assert np.array_equal(mask_a.usable, mask_b.usable)
        _cid, device, _mask = build_client_device(
            seed=4, index=2, num_cells=1024, noise_target_distance=1
        )
        assert device.client_id == "dep-0002"

    def test_verifying_authority_tolerates_concurrent_same_client(self):
        """A second outstanding digest must not falsify the first."""
        authority, _client, _mask = quick_setup(
            seed=2, hash_name="sha1", max_distance=1, noise_target_distance=0
        )
        verifying = VerifyingAuthority(authority)
        from repro.hashes.registry import get_hash

        algo = get_hash("sha1")
        seed_a, seed_b = b"\x01" * 32, b"\x02" * 32
        verifying.record_digest("client-0", algo.scalar(seed_a))
        verifying.record_digest("client-0", algo.scalar(seed_b))
        verifying.issue_public_key("client-0", seed_a)
        verifying.issue_public_key("client-0", seed_b)
        assert verifying.false_authentications == 0
        verifying.record_digest("client-0", algo.scalar(seed_a))
        verifying.issue_public_key("client-0", b"\x03" * 32)
        assert verifying.false_authentications == 1

    def test_classify_failure_buckets(self):
        assert classify_failure(RequestShed("deadline")) == "shed:deadline"
        assert classify_failure(MessageDropped("x", 0.1)) == "dropped"
        assert classify_failure(ServerBusy("q")) == "busy"
        assert classify_failure(
            RetriesExhausted(attempts=3, elapsed_seconds=1.0,
                             last_error=ConnectionLost("gone"))
        ) == "retries-exhausted:connection-lost"
        assert classify_failure(ValueError("?")) == "untyped:ValueError"


# ---------------------------------------------------------------------------
# Process supervision


class TestProcessSupervisor:
    def test_readiness_gate_restart_and_teardown(self):
        supervisor = ProcessSupervisor(grace_seconds=5.0)
        child = (
            "import signal, sys, threading\n"
            "stop = threading.Event()\n"
            "signal.signal(signal.SIGTERM, lambda *_: stop.set())\n"
            "print('CHILD-READY 4242', flush=True)\n"
            "stop.wait(30)\n"
            "sys.exit(0)\n"
        )
        argv = [sys.executable, "-u", "-c", child]
        managed = supervisor.spawn(
            "child", argv, ready_regex=r"CHILD-READY (\d+)"
        )
        assert managed.ready_match is not None
        assert managed.ready_match.group(1) == "4242"
        assert supervisor.health_check() == {"child": True}
        replacement = supervisor.restart("child")
        assert replacement.restarts == 1
        assert replacement.alive
        codes = supervisor.teardown()
        assert codes == {"child": 0}

    def test_death_before_readiness_is_diagnosed(self):
        supervisor = ProcessSupervisor()
        argv = [
            sys.executable,
            "-c",
            "import sys; print('pre-crash detail'); sys.exit(3)",
        ]
        with pytest.raises(ProcessDied) as excinfo:
            supervisor.spawn("crasher", argv, ready_regex=r"NEVER-PRINTED")
        assert excinfo.value.returncode == 3
        assert "pre-crash detail" in str(excinfo.value)

    def test_sigkill_escalation_for_term_ignorer(self):
        supervisor = ProcessSupervisor(grace_seconds=0.5)
        child = (
            "import signal, time\n"
            "signal.signal(signal.SIGTERM, signal.SIG_IGN)\n"
            "print('STUBBORN-READY', flush=True)\n"
            "time.sleep(60)\n"
        )
        supervisor.spawn(
            "stubborn", [sys.executable, "-u", "-c", child],
            ready_regex=r"STUBBORN-READY",
        )
        start = time.monotonic()
        codes = supervisor.teardown()
        assert time.monotonic() - start < 10.0
        assert codes["stubborn"] == -signal.SIGKILL


# ---------------------------------------------------------------------------
# Signal safety + end-to-end storm (real processes)


class TestDeploymentProcesses:
    def _spawn_server(self, spec: TopologySpec, seed: int):
        proc = subprocess.Popen(
            [
                sys.executable, "-u", "-m", "repro.deploy.server",
                "--spec", spec_to_json(spec), "--seed", str(seed),
                "--port", "0",
            ],
            env=_child_env(),
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        assert proc.stdout is not None
        deadline = time.monotonic() + 60.0
        line = ""
        while time.monotonic() < deadline:
            line = proc.stdout.readline()
            if line.startswith("DEPLOY-READY"):
                break
        else:
            proc.kill()
            pytest.fail("server never became ready")
        _tag, host, port = line.split()
        return proc, host, int(port)

    def test_sigterm_mid_search_drains_typed_and_exits_zero(self):
        """Satellite (f) regression: SIGTERM during an in-flight search."""
        spec = TopologySpec(
            clients=2, engine="fifo", workers=1, time_budget=8.0,
            max_distance=2,
        )
        seed = 13
        proc, host, port = self._spawn_server(spec, seed)
        try:
            # Launch a real search (depth 2 keeps the worker busy for a
            # beat), then SIGTERM the server while it is in flight.
            transport = SocketTransport(host, port, timeout_seconds=30.0)
            _cid, device, mask = build_client_device(
                seed, 0, spec.num_cells, noise_target_distance=2
            )
            client = NetworkClient(
                device, transport, reference_mask=mask, max_attempts=1,
            )
            import threading

            outcome: dict = {}

            def drive():
                try:
                    outcome["result"] = client.authenticate(
                        RemoteCAServer(transport)
                    )
                except BaseException as exc:
                    outcome["error"] = exc

            driver = threading.Thread(target=drive)
            driver.start()
            time.sleep(0.35)  # let the digest reach the worker
            proc.send_signal(signal.SIGTERM)
            code = proc.wait(timeout=30.0)
            driver.join(timeout=30.0)
            assert not driver.is_alive(), "client must not hang"
            assert code == 0, "drain must exit cleanly"
            output = proc.stdout.read()
            assert "DEPLOY-DRAINED" in output
            # The in-flight request either drained to a real result or
            # was refused with a *typed* error — never an untyped one.
            if "error" in outcome:
                bucket = classify_failure(outcome["error"])
                assert not bucket.startswith("untyped:"), bucket
            else:
                assert outcome["result"].client_id == "dep-0000"
            transport.close()
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10.0)

    def test_mini_lan_storm_end_to_end(self, tmp_path):
        """1 server x 1 loadgen as real processes over real TCP."""
        spec = TopologySpec(clients=3, time_budget=3.0, engine="fifo",
                            workers=2)
        report = run_profile(
            spec, seed=5, requests=5, duration_seconds=1.0,
            num_loadgens=1, time_scale=1.0, scratch_dir=tmp_path,
        )
        assert report.passed, report.gate_failures
        assert report.outcomes.get("authenticated") == 5
        assert report.false_authentications == 0
        assert report.drained
        assert report.server_counters["completed"] == 5.0
        assert report.latency_p50_ms > 0


# ---------------------------------------------------------------------------
# Crash-restart: SIGKILL teardown, restart policy, durable recovery


_SLEEPER_CHILD = (
    "import time\n"
    "print('CHILD-READY 1', flush=True)\n"
    "time.sleep(60)\n"
)


class TestRestartPolicy:
    def test_backoff_is_exponential_capped_and_jittered(self):
        policy = RestartPolicy(
            max_restarts=10, backoff_base_seconds=0.1,
            backoff_cap_seconds=0.4, jitter_fraction=0.5, seed=7,
        )
        rng = random.Random(7)
        for n, base in ((1, 0.1), (2, 0.2), (3, 0.4), (4, 0.4), (9, 0.4)):
            delay = policy.delay_for(n, rng)
            assert base <= delay <= base * 1.5, (n, delay)

    def test_jitter_is_reproducible_per_seed(self):
        policy = RestartPolicy(seed=3)
        first = [policy.delay_for(n, random.Random(3)) for n in (1, 2, 3)]
        second = [policy.delay_for(n, random.Random(3)) for n in (1, 2, 3)]
        assert first == second

    def test_validation(self):
        with pytest.raises(ValueError):
            RestartPolicy(max_restarts=-1)
        with pytest.raises(ValueError):
            RestartPolicy(jitter_fraction=1.5)
        with pytest.raises(ValueError):
            RestartPolicy().delay_for(0, random.Random(0))


class TestCrashRestart:
    def test_kill_is_sigkill_and_reaps(self):
        supervisor = ProcessSupervisor(grace_seconds=5.0)
        supervisor.spawn(
            "victim", [sys.executable, "-u", "-c", _SLEEPER_CHILD],
            ready_regex=r"CHILD-READY",
        )
        code = supervisor.kill("victim")
        assert code == -signal.SIGKILL
        assert supervisor.health_check() == {"victim": False}
        supervisor.teardown()

    def test_restart_sleeps_policy_backoff(self):
        slept: list[float] = []
        supervisor = ProcessSupervisor(
            grace_seconds=5.0,
            restart_policy=RestartPolicy(
                max_restarts=3, backoff_base_seconds=0.2,
                backoff_cap_seconds=1.0, jitter_fraction=0.0, seed=0,
            ),
            sleep=slept.append,
        )
        supervisor.spawn(
            "child", [sys.executable, "-u", "-c", _SLEEPER_CHILD],
            ready_regex=r"CHILD-READY",
        )
        supervisor.kill("child")
        supervisor.restart("child")
        supervisor.kill("child")
        supervisor.restart("child")
        assert slept == [pytest.approx(0.2), pytest.approx(0.4)]
        assert supervisor.restarts_total == 2
        assert supervisor.backoff_seconds_total == pytest.approx(0.6)
        supervisor.teardown()

    def test_restart_budget_exhaustion_is_typed(self):
        supervisor = ProcessSupervisor(
            grace_seconds=5.0,
            restart_policy=RestartPolicy(
                max_restarts=1, backoff_base_seconds=0.0, seed=0
            ),
            sleep=lambda _s: None,
        )
        supervisor.spawn(
            "child", [sys.executable, "-u", "-c", _SLEEPER_CHILD],
            ready_regex=r"CHILD-READY",
        )
        supervisor.kill("child")
        supervisor.restart("child")
        supervisor.kill("child")
        with pytest.raises(RestartBudgetExhausted) as excinfo:
            supervisor.restart("child")
        assert excinfo.value.name == "child"
        assert excinfo.value.budget == 1
        supervisor.teardown()

    def test_revive_dead_restarts_only_the_dead(self):
        supervisor = ProcessSupervisor(
            grace_seconds=5.0,
            restart_policy=RestartPolicy(
                max_restarts=5, backoff_base_seconds=0.0, seed=0
            ),
            sleep=lambda _s: None,
        )
        for name in ("a", "b"):
            supervisor.spawn(
                name, [sys.executable, "-u", "-c", _SLEEPER_CHILD],
                ready_regex=r"CHILD-READY",
            )
        supervisor.kill("a")
        revived = supervisor.revive_dead()
        assert revived == ["a"]
        assert supervisor.health_check() == {"a": True, "b": True}
        supervisor.teardown()

    def test_durable_server_survives_kill_9(self, tmp_path):
        """The tentpole end-to-end: enroll over TCP, kill -9, restart,
        and every acknowledged enrollment is back at its version."""
        spec = TopologySpec(
            clients=3, engine="fifo", workers=2, time_budget=3.0,
            durability="always",
        )
        argv = [
            sys.executable, "-u", "-m", "repro.deploy.server",
            "--spec", spec_to_json(spec), "--seed", "11",
            "--port", "0", "--data-dir", str(tmp_path / "wal"),
        ]
        supervisor = ProcessSupervisor(
            grace_seconds=15.0, restart_policy=RestartPolicy(seed=11)
        )
        try:
            managed = supervisor.spawn(
                "server", argv, ready_regex=r"DEPLOY-READY (\S+) (\d+)"
            )
            assert managed.ready_match is not None
            host = managed.ready_match.group(1)
            port = int(managed.ready_match.group(2))
            with SocketTransport(host, port) as transport:
                remote = RemoteCAServer(transport)
                acked = {
                    f"dep-{i:04d}": remote.enroll(f"dep-{i:04d}").version
                    for i in range(spec.clients)
                }
            assert supervisor.kill("server") == -signal.SIGKILL

            managed = supervisor.restart("server")
            assert managed.ready_match is not None
            recovered_line = [
                line for line in supervisor.output_of("server")
                if line.startswith("DEPLOY-RECOVERED")
            ]
            assert recovered_line, "restart must report its recovery"
            host = managed.ready_match.group(1)
            port = int(managed.ready_match.group(2))
            with SocketTransport(host, port) as transport:
                remote = RemoteCAServer(transport)
                for client_id, version in acked.items():
                    reply = remote.enroll(client_id, probe=True)
                    assert reply.version >= version, client_id
                # And the recovered store still accepts new versions.
                bumped = remote.enroll("dep-0000")
                assert bumped.version > acked["dep-0000"]
                metrics = remote.fetch_metrics()
                assert metrics.counters["durable_nonce_reuse_trips"] == 0.0
        finally:
            codes = supervisor.teardown()
        assert codes["server"] == 0
