"""One-time session keys in use: encrypt to the RA key, decrypt on-device."""

import numpy as np
import pytest

from repro.core import (
    CertificateAuthority,
    RBCSaltedProtocol,
    RBCSearchService,
    RegistrationAuthority,
)
from repro.core.protocol import ClientDevice
from repro.core.salting import HashChainSalt
from repro.core.session_keys import (
    LWESessionKeygen,
    SessionClient,
    SessionService,
    run_session_flow,
)
from repro.keygen.lwe import ToyModuleLWE
from repro.puf.image_db import EncryptedImageDatabase
from repro.puf.model import SRAMPuf
from repro.puf.ternary import enroll_with_masking
from repro.runtime.executor import BatchSearchExecutor


@pytest.fixture(scope="module")
def session_authority():
    """A CA issuing usable LWE keys, with an authenticated client."""
    puf = SRAMPuf(num_cells=2048, stable_error=0.001, seed=31337)
    mask = enroll_with_masking(puf, 0, 2048, reads=64, instability_threshold=0.02)
    authority = CertificateAuthority(
        search_service=RBCSearchService(
            BatchSearchExecutor("sha3-256", batch_size=16384), max_distance=2
        ),
        salt=HashChainSalt(b"session-keys"),
        keygen=LWESessionKeygen("light"),
        registration_authority=RegistrationAuthority(),
        image_db=EncryptedImageDatabase(b"session-master-k"),
        hash_name="sha3-256",
    )
    authority.enroll("device-7", mask)
    client = ClientDevice(
        "device-7", puf, noise_target_distance=1, rng=np.random.default_rng(2)
    )
    outcome = RBCSaltedProtocol(authority).authenticate(client, reference_mask=mask)
    assert outcome.authenticated
    # The seed the CA found (and the client could re-derive from its read).
    found_seed = authority._last_result.seed
    return authority, found_seed


class TestLWESessionKeygen:
    def test_public_key_is_importable(self):
        keygen = LWESessionKeygen("light")
        raw = keygen.public_key(b"\x07" * 32)
        rho, b = keygen.scheme.import_public(raw)
        assert len(rho) == 32 and b.shape == (2, 256)

    def test_seed_length_enforced(self):
        with pytest.raises(ValueError):
            LWESessionKeygen().public_key(b"short")

    def test_import_rejects_wrong_size(self):
        keygen = LWESessionKeygen("light")
        with pytest.raises(ValueError):
            keygen.scheme.import_public(b"\x00" * 10)


class TestSessionFlow:
    def test_end_to_end_session(self, session_authority):
        authority, found_seed = session_authority
        secret, expected = run_session_flow(
            authority, "device-7", found_seed, rng=np.random.default_rng(3)
        )
        assert secret is not None
        assert secret == expected

    def test_wrong_seed_cannot_open(self, session_authority):
        authority, _found_seed = session_authority
        rng = np.random.default_rng(4)
        secret, expected = run_session_flow(
            authority, "device-7", rng.bytes(32), rng=rng
        )
        assert secret is None or secret != expected

    def test_key_rotation_kills_old_tokens(self, session_authority):
        authority, found_seed = session_authority
        service = SessionService(
            authority.registration_authority,
            authority.keygen,
            rng=np.random.default_rng(5),
        )
        old_token, old_expected = service.establish("device-7")

        # Re-key: a new authentication epoch registers a different key
        # (simulated by issuing a key for a freshly salted seed).
        rng = np.random.default_rng(6)
        new_seed = rng.bytes(32)
        authority.issue_public_key("device-7", new_seed)

        # The old token still opens with the *old* seed (tokens bind to
        # key epochs, not identities)...
        opener = SessionClient(authority.salt, authority.keygen)
        assert opener.open_token(old_token, found_seed) == old_expected
        # ...but a fresh token for the new epoch does not open with it.
        fresh_token, fresh_expected = service.establish("device-7")
        got = opener.open_token(fresh_token, found_seed)
        assert got is None or got != fresh_expected
        # The new epoch's owner opens it fine.
        assert opener.open_token(fresh_token, new_seed) == fresh_expected

    def test_tampered_token_rejected(self, session_authority):
        authority, found_seed = session_authority
        service = SessionService(
            authority.registration_authority,
            authority.keygen,
            rng=np.random.default_rng(7),
        )
        token, _expected = service.establish("device-7")
        tampered_v = token.ciphertext_v.copy()
        tampered_v[:64] = (tampered_v[:64] + authority.keygen.scheme.modulus // 2) % (
            authority.keygen.scheme.modulus
        )
        import dataclasses

        bad = dataclasses.replace(token, ciphertext_v=tampered_v)
        opener = SessionClient(authority.salt, authority.keygen)
        assert opener.open_token(bad, found_seed) is None

    def test_requires_session_keygen(self, small_authority):
        authority, _client, _mask = small_authority  # AES keygen
        with pytest.raises(TypeError):
            run_session_flow(authority, "client-0", b"\x00" * 32)


class TestRegevScheme:
    def test_owner_and_third_party_agree(self, rng):
        lwe = ToyModuleLWE("light")
        seed = rng.bytes(32)
        msg = rng.integers(0, 2, 256).astype(np.uint8)
        randomness = rng.bytes(32)
        owner_ct = lwe.encrypt(seed, msg, randomness)
        third_ct = lwe.encrypt_to_public(lwe.export_public(seed), msg, randomness)
        assert (owner_ct[0] == third_ct[0]).all()
        assert (owner_ct[1] == third_ct[1]).all()

    def test_decrypt_roundtrip_all_presets(self, rng):
        for preset in ("light", "saber"):
            lwe = ToyModuleLWE(preset)
            seed = rng.bytes(32)
            msg = rng.integers(0, 2, lwe.degree).astype(np.uint8)
            ct = lwe.encrypt(seed, msg, rng.bytes(32))
            assert (lwe.decrypt(seed, ct) == msg).all()

    def test_message_shape_enforced(self, rng):
        lwe = ToyModuleLWE("light")
        with pytest.raises(ValueError):
            lwe.encrypt(rng.bytes(32), np.zeros(10, np.uint8), rng.bytes(32))
        with pytest.raises(ValueError):
            lwe.encrypt(rng.bytes(32), np.zeros(256, np.uint8), b"short")
