"""Execution runtime: partitioning, batch executor, multiprocessing search."""

import numpy as np
import pytest

from repro._bitutils import SEED_BITS, flip_bits
from repro.combinatorics.binomial import binomial
from repro.hashes.sha1 import sha1
from repro.hashes.sha3 import sha3_256
from repro.runtime.executor import ITERATOR_CHOICES, BatchSearchExecutor
from repro.runtime.parallel import ParallelSearchExecutor
from repro.runtime.partition import partition_ranks, thread_rank_ranges


class TestPartition:
    def test_covers_range_exactly(self):
        ranges = partition_ranks(100, 7)
        assert ranges[0][0] == 0 and ranges[-1][1] == 100
        for (a, b), (c, _) in zip(ranges, ranges[1:]):
            assert b == c

    def test_sizes_differ_by_at_most_one(self):
        ranges = partition_ranks(101, 7)
        sizes = [b - a for a, b in ranges]
        assert max(sizes) - min(sizes) <= 1

    def test_more_parts_than_work(self):
        ranges = partition_ranks(3, 5)
        sizes = [b - a for a, b in ranges]
        assert sum(sizes) == 3 and max(sizes) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            partition_ranks(10, 0)
        with pytest.raises(ValueError):
            partition_ranks(-1, 2)

    def test_thread_rank_ranges_match_shell(self):
        ranges = thread_rank_ranges(SEED_BITS, 2, 8)
        assert ranges[-1][1] == binomial(SEED_BITS, 2)


class TestBatchExecutor:
    @pytest.mark.parametrize("hash_name", ["sha1", "sha256", "sha3-256"])
    def test_finds_distance_2_seed(self, base_seed, hash_name):
        from repro.hashes.registry import get_hash

        algo = get_hash(hash_name)
        client_seed = flip_bits(base_seed, [7, 133])
        executor = BatchSearchExecutor(hash_name, batch_size=8192)
        result = executor.search(base_seed, algo.scalar(client_seed), 2)
        assert result.found and result.seed == client_seed and result.distance == 2

    def test_distance_zero_short_circuits(self, base_seed):
        executor = BatchSearchExecutor("sha3-256")
        result = executor.search(base_seed, sha3_256(base_seed), 2)
        assert result.found and result.distance == 0 and result.seeds_hashed == 1

    def test_exhausts_space_without_match(self, base_seed, rng):
        executor = BatchSearchExecutor("sha1", batch_size=4096)
        result = executor.search(base_seed, sha1(rng.bytes(32)), 1)
        assert not result.found and not result.timed_out
        assert result.seeds_hashed == 1 + 256  # d=0 plus the full d=1 shell

    def test_timeout_flagged(self, base_seed, rng):
        executor = BatchSearchExecutor("sha3-256", batch_size=128)
        result = executor.search(base_seed, sha3_256(rng.bytes(32)), 2, time_budget=0.0)
        assert result.timed_out

    def test_rank_range_restriction(self, base_seed):
        # Plant at the last d=1 position; a worker owning only the first
        # half of the shell must miss it.
        client_seed = flip_bits(base_seed, [255])
        digest = sha1(client_seed)
        executor = BatchSearchExecutor("sha1")
        half = binomial(SEED_BITS, 1) // 2
        miss = executor.search(
            base_seed, digest, 1, rank_range_by_distance={1: (0, half)}
        )
        assert not miss.found
        hit = executor.search(
            base_seed, digest, 1, rank_range_by_distance={1: (half, 256)}
        )
        assert hit.found

    @pytest.mark.parametrize("iterator", ITERATOR_CHOICES)
    def test_all_iterators_find_same_seed(self, base_seed, iterator):
        client_seed = flip_bits(base_seed, [99])
        executor = BatchSearchExecutor("sha1", batch_size=64, iterator=iterator)
        result = executor.search(base_seed, sha1(client_seed), 1)
        assert result.found and result.seed == client_seed

    def test_generic_padding_search(self, base_seed):
        client_seed = flip_bits(base_seed, [5])
        executor = BatchSearchExecutor("sha3-256", fixed_padding=False)
        result = executor.search(base_seed, sha3_256(client_seed), 1)
        assert result.found

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            BatchSearchExecutor("sha1", batch_size=0)
        with pytest.raises(ValueError):
            BatchSearchExecutor("sha1", iterator="magic")

    def test_throughput_probe_positive(self):
        rate = BatchSearchExecutor("sha1").throughput_probe(num_seeds=2000)
        assert rate > 0

    def test_result_throughput_consistency(self, base_seed):
        client_seed = flip_bits(base_seed, [1, 2])
        executor = BatchSearchExecutor("sha1", batch_size=4096)
        result = executor.search(base_seed, sha1(client_seed), 2)
        assert result.seeds_hashed <= 1 + 256 + binomial(SEED_BITS, 2)


class TestParallelExecutor:
    def test_finds_planted_seed(self, base_seed):
        client_seed = flip_bits(base_seed, [31, 222])
        executor = ParallelSearchExecutor("sha1", workers=4, batch_size=4096)
        result = executor.search(base_seed, sha1(client_seed), 2)
        assert result.found and result.seed == client_seed and result.distance == 2

    def test_not_found_aggregates_counts(self, base_seed, rng):
        executor = ParallelSearchExecutor("sha1", workers=3, batch_size=2048)
        result = executor.search(base_seed, sha1(rng.bytes(32)), 1)
        assert not result.found
        assert result.seeds_hashed == 1 + 256  # workers jointly covered the shell

    def test_worker_zero_checks_distance_zero(self, base_seed):
        executor = ParallelSearchExecutor("sha1", workers=2, batch_size=2048)
        result = executor.search(base_seed, sha1(base_seed), 1)
        assert result.found and result.distance == 0

    def test_single_worker_degenerates_to_serial(self, base_seed):
        client_seed = flip_bits(base_seed, [64])
        executor = ParallelSearchExecutor("sha1", workers=1, batch_size=2048)
        result = executor.search(base_seed, sha1(client_seed), 1)
        assert result.found

    def test_workers_validation(self):
        with pytest.raises(ValueError):
            ParallelSearchExecutor("sha1", workers=0)
