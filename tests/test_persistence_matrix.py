"""Database persistence and the full configuration matrix."""

import numpy as np
import pytest

from repro.core import (
    CertificateAuthority,
    RBCSaltedProtocol,
    RBCSearchService,
    RegistrationAuthority,
)
from repro.core.protocol import ClientDevice
from repro.core.salting import HashChainSalt
from repro.keygen.interface import get_keygen
from repro.puf.arbiter import ArbiterPuf
from repro.puf.image_db import EncryptedImageDatabase
from repro.puf.model import SRAMPuf
from repro.puf.ring_oscillator import RingOscillatorPuf
from repro.puf.ternary import enroll_with_masking
from repro.runtime.executor import BatchSearchExecutor


class TestPersistence:
    @pytest.fixture
    def populated_db(self):
        puf = SRAMPuf(num_cells=512, seed=8)
        mask = enroll_with_masking(puf, 0, 512)
        db = EncryptedImageDatabase(b"persistence-key!")
        db.enroll("alice", mask)
        db.enroll("bob", mask)
        return db, mask

    def test_save_load_roundtrip(self, populated_db, tmp_path):
        db, mask = populated_db
        path = tmp_path / "images.db"
        db.save(path)
        restored = EncryptedImageDatabase.load(path, b"persistence-key!")
        assert len(restored) == 2
        loaded = restored.lookup("alice")
        assert (loaded.reference == mask.reference).all()

    def test_file_contents_stay_encrypted(self, populated_db, tmp_path):
        db, _mask = populated_db
        path = tmp_path / "images.db"
        db.save(path)
        raw = path.read_text()
        assert "reference" not in raw.split('"records"')[1]

    def test_wrong_key_cannot_read_loaded_db(self, populated_db, tmp_path):
        db, _mask = populated_db
        path = tmp_path / "images.db"
        db.save(path)
        wrong = EncryptedImageDatabase.load(path, b"other-master-key")
        with pytest.raises(Exception):
            wrong.lookup("alice")

    def test_unknown_format_rejected(self, tmp_path):
        path = tmp_path / "bad.db"
        path.write_text('{"format": "something-else", "records": {}}')
        with pytest.raises(ValueError):
            EncryptedImageDatabase.load(path, b"persistence-key!")

    def test_ca_survives_restart(self, populated_db, tmp_path):
        """Enrollment -> save -> 'reboot' -> load -> authenticate."""
        db, mask = populated_db
        path = tmp_path / "images.db"
        db.save(path)
        puf = SRAMPuf(num_cells=512, seed=8)  # the same physical chip
        restored = EncryptedImageDatabase.load(path, b"persistence-key!")
        authority = CertificateAuthority(
            search_service=RBCSearchService(
                BatchSearchExecutor("sha1", batch_size=8192), max_distance=2
            ),
            salt=HashChainSalt(),
            keygen=get_keygen("aes-128"),
            registration_authority=RegistrationAuthority(),
            image_db=restored,
            hash_name="sha1",
        )
        client = ClientDevice("alice", puf, rng=np.random.default_rng(0))
        outcome = RBCSaltedProtocol(authority).authenticate(
            client, reference_mask=mask
        )
        assert outcome.authenticated


PUF_BUILDERS = {
    "sram": lambda: SRAMPuf(num_cells=2048, stable_error=0.001, seed=5150),
    "arbiter": lambda: ArbiterPuf(num_cells=2048, seed=5150),
    "ring-osc": lambda: RingOscillatorPuf(num_cells=2048, seed=5150),
}


class TestConfigurationMatrix:
    """Every hash x keygen x PUF combination authenticates at d=1.

    The RBC-SALTED modularity claim, exercised exhaustively: the search
    is agnostic to the key generator, the hash is a configuration knob,
    and the PUF technology is invisible above the bit stream.
    """

    @pytest.mark.parametrize("hash_name", ["sha1", "sha256", "sha3-256", "sha512"])
    @pytest.mark.parametrize("keygen_name", ["aes-128", "speck-128", "chacha20"])
    @pytest.mark.parametrize("puf_kind", sorted(PUF_BUILDERS))
    def test_combination(self, hash_name, keygen_name, puf_kind):
        puf = PUF_BUILDERS[puf_kind]()
        mask = enroll_with_masking(
            puf, 0, 2048, reads=48, instability_threshold=0.02
        )
        authority = CertificateAuthority(
            search_service=RBCSearchService(
                BatchSearchExecutor(hash_name, batch_size=4096), max_distance=1
            ),
            salt=HashChainSalt(),
            keygen=get_keygen(keygen_name),
            registration_authority=RegistrationAuthority(),
            image_db=EncryptedImageDatabase(b"matrix-master-k."),
            hash_name=hash_name,
        )
        authority.enroll("m", mask)
        client = ClientDevice(
            "m", puf, noise_target_distance=1, rng=np.random.default_rng(1)
        )
        outcome = RBCSaltedProtocol(authority).authenticate(
            client, reference_mask=mask
        )
        assert outcome.authenticated, (hash_name, keygen_name, puf_kind)
        assert outcome.public_key is not None
