"""Batch (vectorized) hash kernels: equivalence with scalar + hashlib."""

import hashlib

import numpy as np
import pytest

from repro._bitutils import seeds_to_words
from repro.hashes.batch_sha1 import sha1_batch_seeds, sha1_digest_to_words
from repro.hashes.batch_sha256 import sha256_batch_seeds, sha256_digest_to_words
from repro.hashes.batch_sha3 import (
    keccak_f1600_batch,
    sha3_256_batch_seeds,
    sha3_256_digest_to_words,
)
from repro.hashes.sha3 import keccak_f1600

KERNELS = [
    ("sha1", sha1_batch_seeds, sha1_digest_to_words, hashlib.sha1),
    ("sha256", sha256_batch_seeds, sha256_digest_to_words, hashlib.sha256),
    ("sha3", sha3_256_batch_seeds, sha3_256_digest_to_words, hashlib.sha3_256),
]


@pytest.fixture(params=KERNELS, ids=lambda k: k[0])
def kernel(request):
    return request.param


class TestKernelCorrectness:
    @pytest.mark.parametrize("fixed", [True, False], ids=["fixed-pad", "generic-pad"])
    def test_matches_hashlib(self, kernel, rng, fixed):
        _, batch, to_words, ref = kernel
        seeds = [rng.bytes(32) for _ in range(64)]
        digests = batch(seeds_to_words(seeds), fixed_padding=fixed)
        for i, seed in enumerate(seeds):
            assert (digests[i] == to_words(ref(seed).digest())).all()

    def test_generic_equals_fixed(self, kernel, rng):
        _, batch, _, _ = kernel
        words = seeds_to_words([rng.bytes(32) for _ in range(32)])
        assert (batch(words, fixed_padding=True) == batch(words, fixed_padding=False)).all()

    def test_single_seed_batch(self, kernel, rng):
        _, batch, to_words, ref = kernel
        seed = rng.bytes(32)
        digests = batch(seeds_to_words([seed]))
        assert digests.shape[0] == 1
        assert (digests[0] == to_words(ref(seed).digest())).all()

    def test_deterministic(self, kernel, rng):
        _, batch, _, _ = kernel
        words = seeds_to_words([rng.bytes(32) for _ in range(8)])
        assert (batch(words) == batch(words)).all()

    def test_input_not_mutated(self, kernel, rng):
        _, batch, _, _ = kernel
        words = seeds_to_words([rng.bytes(32) for _ in range(8)])
        original = words.copy()
        batch(words)
        assert (words == original).all()

    def test_shape_validation(self, kernel):
        _, batch, _, _ = kernel
        with pytest.raises(ValueError):
            batch(np.zeros((4, 3), dtype=np.uint64))

    def test_digest_to_words_validation(self, kernel):
        _, _, to_words, _ = kernel
        with pytest.raises(ValueError):
            to_words(b"\x00" * 7)


class TestBatchKeccakPermutation:
    def test_matches_scalar_permutation(self, rng):
        n = 16
        lanes_int = [
            [int(x) for x in rng.integers(0, 1 << 63, size=n)] for _ in range(25)
        ]
        batch_in = [np.array(lane, dtype=np.uint64) for lane in lanes_int]
        batch_out = keccak_f1600_batch(batch_in)
        for j in range(n):
            scalar_out = keccak_f1600([lanes_int[i][j] for i in range(25)])
            got = [int(batch_out[i][j]) for i in range(25)]
            assert got == scalar_out

    def test_lane_count_validation(self):
        with pytest.raises(ValueError):
            keccak_f1600_batch([np.zeros(4, dtype=np.uint64)] * 24)

    def test_does_not_mutate_input(self):
        lanes = [np.arange(4, dtype=np.uint64) for _ in range(25)]
        keccak_f1600_batch(lanes)
        assert (lanes[0] == np.arange(4, dtype=np.uint64)).all()


class TestDigestComparisonLayout:
    """The batch digest layout must make equality a column-wise compare."""

    def test_planted_match_detected(self, kernel, rng):
        _, batch, to_words, ref = kernel
        seeds = [rng.bytes(32) for _ in range(50)]
        target = to_words(ref(seeds[37]).digest())
        digests = batch(seeds_to_words(seeds))
        matches = np.flatnonzero((digests == target).all(axis=1))
        assert matches.tolist() == [37]

    def test_no_false_positives(self, kernel, rng):
        _, batch, to_words, ref = kernel
        seeds = [rng.bytes(32) for _ in range(50)]
        target = to_words(ref(rng.bytes(32)).digest())
        digests = batch(seeds_to_words(seeds))
        assert not (digests == target).all(axis=1).any()
