"""Property-based tests for the extension modules (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.hashes.hmac import hmac_digest, hmac_verify
from repro.keygen.aes import AES128
from repro.keygen.batch_aes import aes128_encrypt_batch
from repro.keygen.batch_chacha20 import chacha20_block_batch
from repro.keygen.batch_speck import speck128_encrypt_batch
from repro.keygen.chacha20 import chacha20_block
from repro.keygen.speck import Speck128

block16 = st.binary(min_size=16, max_size=16)
key32 = st.binary(min_size=32, max_size=32)


class TestBatchCipherEquivalence:
    @given(st.lists(st.tuples(block16, block16), min_size=1, max_size=8))
    @settings(max_examples=25, deadline=None)
    def test_batch_aes_equals_scalar(self, pairs):
        keys = np.frombuffer(b"".join(k for k, _ in pairs), np.uint8).reshape(-1, 16)
        pts = np.frombuffer(b"".join(p for _, p in pairs), np.uint8).reshape(-1, 16)
        cts = aes128_encrypt_batch(keys, pts)
        for i, (k, p) in enumerate(pairs):
            assert cts[i].tobytes() == AES128(k).encrypt_block(p)

    @given(st.lists(st.tuples(block16, block16), min_size=1, max_size=8))
    @settings(max_examples=25, deadline=None)
    def test_batch_speck_equals_scalar(self, pairs):
        keys = np.frombuffer(b"".join(k for k, _ in pairs), np.uint8).reshape(-1, 16)
        pts = np.frombuffer(b"".join(p for _, p in pairs), np.uint8).reshape(-1, 16)
        cts = speck128_encrypt_batch(keys, pts)
        for i, (k, p) in enumerate(pairs):
            assert cts[i].tobytes() == Speck128(k).encrypt_block(p)

    @given(st.lists(key32, min_size=1, max_size=6), st.binary(min_size=12, max_size=12),
           st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_batch_chacha_equals_scalar(self, keys, nonce, counter):
        arr = np.frombuffer(b"".join(keys), np.uint8).reshape(-1, 32)
        blocks = chacha20_block_batch(arr, counter=counter, nonce=nonce)
        for i, key in enumerate(keys):
            assert blocks[i].tobytes() == chacha20_block(key, counter, nonce)


class TestSuffixedKernelProperties:
    @given(st.lists(key32, min_size=1, max_size=6),
           st.binary(min_size=0, max_size=103))
    @settings(max_examples=25, deadline=None)
    def test_suffixed_sha3_equals_scalar(self, seeds, suffix):
        from repro._bitutils import seeds_to_words
        from repro.hashes.batch_sha3 import (
            sha3_256_batch_seeds_suffixed,
            sha3_256_digest_to_words,
        )
        from repro.hashes.sha3 import sha3_256

        digests = sha3_256_batch_seeds_suffixed(seeds_to_words(seeds), suffix)
        for i, seed in enumerate(seeds):
            want = sha3_256_digest_to_words(sha3_256(seed + suffix))
            assert (digests[i] == want).all()

    @given(key32, st.binary(min_size=1, max_size=16))
    @settings(max_examples=20, deadline=None)
    def test_suffix_changes_digest(self, seed, suffix):
        from repro._bitutils import seeds_to_words
        from repro.hashes.batch_sha3 import sha3_256_batch_seeds_suffixed

        words = seeds_to_words([seed])
        plain = sha3_256_batch_seeds_suffixed(words, b"")
        bound = sha3_256_batch_seeds_suffixed(words, suffix)
        assert not (plain == bound).all()


class TestHMACProperties:
    @given(st.binary(min_size=1, max_size=100), st.binary(max_size=200))
    @settings(max_examples=30)
    def test_roundtrip(self, key, message):
        tag = hmac_digest(key, message)
        assert hmac_verify(key, message, tag)

    @given(st.binary(min_size=1, max_size=64), st.binary(max_size=100),
           st.binary(min_size=1, max_size=64))
    @settings(max_examples=30)
    def test_key_separation(self, key_a, message, key_delta):
        key_b = bytes(a ^ b for a, b in zip(key_a.ljust(64, b"\0"), key_delta.ljust(64, b"\0")))
        if key_b.rstrip(b"\0") == key_a.rstrip(b"\0"):
            return
        assert hmac_digest(key_a, message) != hmac_digest(key_b, message)

    @given(st.binary(min_size=1, max_size=64), st.binary(max_size=100), st.integers(0, 255))
    @settings(max_examples=30)
    def test_message_sensitivity(self, key, message, extra):
        tampered = message + bytes([extra])
        assert hmac_digest(key, message) != hmac_digest(key, tampered)


class TestChase382Properties:
    @given(st.integers(1, 10), st.data())
    @settings(max_examples=30, deadline=None)
    def test_twiddle_is_gray_code(self, n, data):
        from itertools import combinations

        from repro.combinatorics.chase382 import chase382_sequence

        k = data.draw(st.integers(1, n))
        seq = list(chase382_sequence(n, k))
        assert set(seq) == set(combinations(range(n), k))
        assert len(seq) == len(set(seq))
        for a, b in zip(seq, seq[1:]):
            assert len(set(a) ^ set(b)) == 2


class TestClusterProperties:
    @given(st.integers(1, 6), st.integers(0, 255))
    @settings(max_examples=10, deadline=None)
    def test_some_rank_always_finds_d1_seed(self, ranks, position):
        from repro._bitutils import flip_bits
        from repro.hashes.sha1 import sha1
        from repro.runtime.cluster import ClusterSearchExecutor

        rng = np.random.default_rng(position)
        base = rng.bytes(32)
        client = flip_bits(base, [position])
        cluster = ClusterSearchExecutor(ranks, "sha1", batch_size=512)
        result = cluster.search(base, sha1(client), 1)
        assert result.found and result.seed == client
