"""Associative-match search and the fuzzy-extractor ECC contrast."""

import numpy as np
import pytest

from repro._bitutils import flip_bits
from repro.devices.associative import AssociativeProcessor
from repro.devices.bitserial_search import AssociativeSearchEngine, associative_match
from repro.puf.fuzzy_extractor import RepetitionFuzzyExtractor


class TestAssociativeMatch:
    def test_match_vector(self):
        proc = AssociativeProcessor(4)
        field = np.array([[1, 2], [3, 4], [1, 2], [5, 6]], dtype=np.uint32)
        matches = associative_match(proc, field, np.array([1, 2], dtype=np.uint32))
        assert matches.tolist() == [True, False, True, False]

    def test_match_costs_ops(self):
        proc = AssociativeProcessor(2)
        before = proc.op_count
        associative_match(
            proc, np.zeros((2, 5), dtype=np.uint32), np.zeros(5, dtype=np.uint32)
        )
        assert proc.op_count - before == 5 * 32  # one sweep per key bit

    def test_shape_validation(self):
        proc = AssociativeProcessor(2)
        with pytest.raises(ValueError):
            associative_match(
                proc, np.zeros((3, 5), dtype=np.uint32), np.zeros(5, np.uint32)
            )
        with pytest.raises(ValueError):
            associative_match(
                proc, np.zeros((2, 5), dtype=np.uint32), np.zeros(4, np.uint32)
            )


class TestAssociativeSearchEngine:
    @pytest.mark.parametrize("hash_name", ["sha1", "sha3-256"])
    def test_finds_planted_candidate(self, hash_name, rng):
        from repro.hashes.registry import get_hash

        engine = AssociativeSearchEngine(hash_name)
        base = rng.bytes(32)
        candidates = [flip_bits(base, [i]) for i in range(6)]
        target = get_hash(hash_name).scalar(candidates[4])
        index, proc = engine.search_batch(candidates, target)
        assert index == 4
        assert proc.op_count > 0

    def test_no_match_returns_none(self, rng):
        engine = AssociativeSearchEngine("sha1")
        candidates = [rng.bytes(32) for _ in range(4)]
        index, _proc = engine.search_batch(candidates, b"\x00" * 20)
        assert index is None

    def test_ops_per_candidate_scale(self):
        sha1_ops = AssociativeSearchEngine("sha1").ops_per_candidate(2)
        sha3_ops = AssociativeSearchEngine("sha3-256").ops_per_candidate(2)
        assert sha3_ops > 2 * sha1_ops  # the APU's SHA-3 penalty, again

    def test_unsupported_hash(self):
        with pytest.raises(ValueError):
            AssociativeSearchEngine("sha256")

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            AssociativeSearchEngine("sha1").search_batch([], b"\x00" * 20)


class TestFuzzyExtractor:
    @pytest.fixture
    def extractor(self):
        return RepetitionFuzzyExtractor(secret_bits=64, repetition=5)

    def test_clean_roundtrip(self, extractor, rng):
        reading = rng.integers(0, 2, extractor.reading_bits, dtype=np.uint8)
        secret, helper = extractor.enroll(reading, rng)
        assert (extractor.reproduce(reading, helper) == secret).all()

    def test_corrects_scattered_errors(self, extractor, rng):
        reading = rng.integers(0, 2, extractor.reading_bits, dtype=np.uint8)
        secret, helper = extractor.enroll(reading, rng)
        noisy = reading.copy()
        # Two errors per group are correctable with r=5 (majority of 5).
        noisy[0] ^= 1
        noisy[1] ^= 1
        noisy[5 * 10] ^= 1
        assert (extractor.reproduce(noisy, helper) == secret).all()

    def test_fails_beyond_correction_radius(self, extractor, rng):
        reading = rng.integers(0, 2, extractor.reading_bits, dtype=np.uint8)
        secret, helper = extractor.enroll(reading, rng)
        noisy = reading.copy()
        noisy[0:3] ^= 1  # three errors in one 5-bit group flip that bit
        recovered = extractor.reproduce(noisy, helper)
        assert recovered[0] != secret[0]
        assert (recovered[1:] == secret[1:]).all()

    def test_failure_probability_model(self, extractor):
        assert extractor.failure_probability(0.0) == 0.0
        low = extractor.failure_probability(0.01)
        high = extractor.failure_probability(0.1)
        assert 0.0 < low < high < 1.0

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            RepetitionFuzzyExtractor(repetition=4)  # even
        with pytest.raises(ValueError):
            RepetitionFuzzyExtractor(secret_bits=0)
        extractor = RepetitionFuzzyExtractor(secret_bits=8, repetition=3)
        with pytest.raises(ValueError):
            extractor.reproduce(np.zeros(10, np.uint8), None)

    def test_helper_mismatch_rejected(self, extractor, rng):
        reading = rng.integers(0, 2, extractor.reading_bits, dtype=np.uint8)
        _secret, helper = extractor.enroll(reading, rng)
        other = RepetitionFuzzyExtractor(secret_bits=64, repetition=7)
        reading7 = rng.integers(0, 2, other.reading_bits, dtype=np.uint8)
        with pytest.raises(ValueError):
            other.reproduce(reading7, helper)


class TestRBCVsECCTradeoff:
    """The paper's motivating comparison, quantified."""

    def test_client_cost_asymmetry(self):
        """ECC reproduction costs thousands of client bit-ops; RBC's
        client does one hash and no correction at all."""
        extractor = RepetitionFuzzyExtractor(secret_bits=256, repetition=5)
        assert extractor.client_bit_operations() > 2500

    def test_reliability_needs_more_repetition_than_iot_can_store(self):
        """At a 5-bit-in-256 error rate (~2%), r=3 fails often while
        r=7 is reliable — helper storage and leakage triple."""
        error_rate = 5 / 256
        weak = RepetitionFuzzyExtractor(256, 3)
        strong = RepetitionFuzzyExtractor(256, 7)
        assert weak.failure_probability(error_rate) > 0.05
        assert strong.failure_probability(error_rate) < 0.01
        assert strong.helper_leakage_bits() == 3 * weak.helper_leakage_bits()

    def test_rbc_has_no_helper_leakage_channel(self, rng):
        """RBC publishes only a one-way digest; the ECC path publishes
        helper data whose bits are linear in the reading."""
        extractor = RepetitionFuzzyExtractor(secret_bits=32, repetition=3)
        reading = rng.integers(0, 2, extractor.reading_bits, dtype=np.uint8)
        secret, helper = extractor.enroll(reading, rng)
        # Given the helper and the reading, the secret is fully determined
        # (linear relation) — the leakage RBC's threat model forbids.
        recovered = extractor.reproduce(reading, helper)
        assert (recovered == secret).all()
        assert extractor.helper_leakage_bits() > 0
