"""Arbiter and ring-oscillator PUF models + protocol agnosticism."""

import numpy as np
import pytest

from repro.puf.arbiter import ArbiterPuf
from repro.puf.ring_oscillator import RingOscillatorPuf
from repro.puf.ternary import enroll_with_masking

VARIANTS = [
    lambda seed: ArbiterPuf(num_cells=2048, seed=seed),
    lambda seed: RingOscillatorPuf(num_cells=2048, seed=seed),
]


@pytest.fixture(params=VARIANTS, ids=["arbiter", "ring-oscillator"])
def make_puf(request):
    return request.param


class TestCommonContract:
    def test_reference_is_deterministic(self, make_puf):
        puf = make_puf(1)
        a = puf.reference_bits(0, 512)
        b = puf.reference_bits(0, 512)
        assert (a == b).all()

    def test_reads_are_close_to_reference(self, make_puf):
        puf = make_puf(2)
        reference = puf.reference_bits(0, 2048)
        distances = [
            int((puf.read(0, 2048).bits != reference).sum()) for _ in range(10)
        ]
        assert max(distances) < 300  # mostly stable
        assert sum(distances) > 0    # but noisy

    def test_devices_are_unique(self, make_puf):
        a = make_puf(10).reference_bits(0, 1024)
        b = make_puf(11).reference_bits(0, 1024)
        differing = int((a != b).sum())
        assert 300 < differing < 724  # near-uniform inter-device distance

    def test_window_validation(self, make_puf):
        puf = make_puf(3)
        with pytest.raises(ValueError):
            puf.read(2040, 100)
        with pytest.raises(ValueError):
            puf.read(0, 0)

    def test_read_repeated_shape(self, make_puf):
        puf = make_puf(4)
        samples = puf.read_repeated(0, 128, 5)
        assert samples.shape == (5, 128)

    def test_tapki_masking_reduces_noise(self, make_puf):
        puf = make_puf(5)
        mask = enroll_with_masking(puf, 0, 2048, reads=48, instability_threshold=0.05)
        reference = mask.reference_seed_bits(256)
        masked_dists = []
        for _ in range(15):
            bits = mask.select_bits(puf.read(0, 2048).bits, 256)
            masked_dists.append(int((bits != reference).sum()))
        assert np.mean(masked_dists) < 8


class TestArbiterSpecifics:
    def test_instability_concentrates_at_small_margins(self):
        puf = ArbiterPuf(num_cells=4096, seed=6)
        samples = puf.read_repeated(0, 4096, 24)
        ones = samples.sum(axis=0)
        disagreement = np.minimum(ones, 24 - ones) / 24
        margins = puf.delay_margins
        unstable = disagreement > 0.1
        if unstable.any():
            assert margins[unstable].mean() < margins[~unstable].mean()

    def test_stage_count_validation(self):
        with pytest.raises(ValueError):
            ArbiterPuf(stages=4)

    def test_feature_map_suffix_parity(self):
        challenges = np.array([[0, 1, 1]], dtype=np.int8)
        features = ArbiterPuf._feature_map(challenges)
        # signs = (+1, -1, -1); suffix products: (+1, +1, -1), const 1.
        assert features[0].tolist() == [1.0, 1.0, -1.0, 1.0]


class TestRingOscillatorSpecifics:
    def test_instability_concentrates_at_small_margins(self):
        puf = RingOscillatorPuf(num_cells=4096, seed=7)
        samples = puf.read_repeated(0, 4096, 24)
        ones = samples.sum(axis=0)
        disagreement = np.minimum(ones, 24 - ones) / 24
        margins = puf.frequency_margins
        unstable = disagreement > 0.1
        if unstable.any():
            assert margins[unstable].mean() < margins[~unstable].mean()

    def test_longer_window_is_quieter(self):
        noisy = RingOscillatorPuf(num_cells=2048, count_window_seconds=1e-5, seed=8)
        quiet = RingOscillatorPuf(num_cells=2048, count_window_seconds=1e-3, seed=8)
        ref_noisy = noisy.reference_bits(0, 2048)
        ref_quiet = quiet.reference_bits(0, 2048)
        noisy_err = np.mean([
            (noisy.read(0, 2048).bits != ref_noisy).mean() for _ in range(8)
        ])
        quiet_err = np.mean([
            (quiet.read(0, 2048).bits != ref_quiet).mean() for _ in range(8)
        ])
        assert quiet_err < noisy_err


class TestProtocolAgnosticism:
    """RBC-SALTED runs unchanged over any PUF architecture."""

    @pytest.mark.parametrize("variant", VARIANTS, ids=["arbiter", "ring-oscillator"])
    def test_full_authentication(self, variant):
        from repro.core import (
            CertificateAuthority,
            RBCSaltedProtocol,
            RBCSearchService,
            RegistrationAuthority,
        )
        from repro.core.protocol import ClientDevice
        from repro.core.salting import HashChainSalt
        from repro.keygen.interface import get_keygen
        from repro.puf.image_db import EncryptedImageDatabase
        from repro.runtime.executor import BatchSearchExecutor

        puf = variant(99)
        mask = enroll_with_masking(
            puf, 0, 2048, reads=64, instability_threshold=0.02
        )
        authority = CertificateAuthority(
            search_service=RBCSearchService(
                BatchSearchExecutor("sha1", batch_size=8192), max_distance=2
            ),
            salt=HashChainSalt(),
            keygen=get_keygen("aes-128"),
            registration_authority=RegistrationAuthority(),
            image_db=EncryptedImageDatabase(b"puf-agnostic-key"),
            hash_name="sha1",
        )
        authority.enroll("dev", mask)
        client = ClientDevice(
            "dev", puf, noise_target_distance=1, rng=np.random.default_rng(0)
        )
        outcome = RBCSaltedProtocol(authority).authenticate(
            client, reference_mask=mask
        )
        assert outcome.authenticated
