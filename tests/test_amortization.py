"""Amortized search pipeline: mask-plan cache, warm pool, Keccak kernel.

The contract under test is the one the benchmark relies on: caching and
pooling change *where* the work happens (once, up front) but never *what*
the search computes — cached and uncached searches are byte-identical,
the cache honors its memory bound, and a warm pool serves hundreds of
searches without spawning new processes or leaking descriptors.
"""

from __future__ import annotations

import hashlib
import os

import numpy as np
import pytest

from repro._bitutils import flip_bits, positions_to_mask_words, words_to_seed
from repro.engines import build_engine
from repro.engines.hooks import TelemetryHooks
from repro.engines.result import AmortizationStats
from repro.hashes.batch_sha3 import sha3_256_batch_seeds
from repro.runtime.executor import ITERATOR_CHOICES, BatchSearchExecutor
from repro.runtime.maskplan import (
    MaskPlanCache,
    attach_plan,
    combination_batches,
    detach_plan,
    global_plan_cache,
)
from repro.runtime.parallel import ParallelSearchExecutor
from repro.runtime.pool import PooledSearchExecutor, WorkerPool, default_worker_count

#: Restricting d=2 to this rank range keeps the scalar iterators fast.
D2_RANGE = (0, 2048)


def _result_fingerprint(result):
    """The deterministic protocol surface of a SearchResult."""
    return (
        result.found,
        result.seed,
        result.distance,
        result.seeds_hashed,
        result.timed_out,
        tuple((s.distance, s.seeds_hashed) for s in result.shells),
    )


class TestCachedSearchEquivalence:
    @pytest.mark.parametrize("iterator", ITERATOR_CHOICES)
    def test_cached_and_uncached_results_identical(self, base_seed, iterator):
        """Same search, with and without the plan cache, across iterators."""
        target = hashlib.sha1(b"no such seed").digest()
        ranges = {2: D2_RANGE}
        plain = BatchSearchExecutor("sha1", batch_size=512, iterator=iterator)
        cached = BatchSearchExecutor(
            "sha1", batch_size=512, iterator=iterator,
            cache=True, plan_cache=MaskPlanCache(max_bytes=1 << 22),
        )
        reference = plain.search(base_seed, target, 2, rank_range_by_distance=ranges)
        first = cached.search(base_seed, target, 2, rank_range_by_distance=ranges)
        second = cached.search(base_seed, target, 2, rank_range_by_distance=ranges)
        assert _result_fingerprint(first) == _result_fingerprint(reference)
        assert _result_fingerprint(second) == _result_fingerprint(reference)
        # First search built the plans; the second one reused every slice.
        assert first.amortized is not None and first.amortized.plan_misses > 0
        assert second.amortized is not None
        assert second.amortized.plan_hits == len(ranges) + 1  # d=1 and d=2
        assert second.amortized.plan_misses == 0
        assert reference.amortized is None

    @pytest.mark.parametrize("iterator", ITERATOR_CHOICES)
    def test_plan_masks_match_streamed_masks(self, iterator):
        """Cached plan arrays are byte-identical to streamed generation."""
        cache = MaskPlanCache(max_bytes=1 << 22)
        plan, hit = cache.get_or_build(2, *D2_RANGE, 512, iterator)
        assert plan is not None and not hit
        streamed = np.concatenate([
            positions_to_mask_words(positions)
            for positions in combination_batches(2, *D2_RANGE, 512, iterator)
        ])
        assert plan.masks.tobytes() == streamed.tobytes()
        cache.clear()

    def test_found_seed_identical_with_cache(self, planted_pair):
        base_seed, client_seed, distance = planted_pair
        target = hashlib.sha3_256(client_seed).digest()
        plain = BatchSearchExecutor("sha3-256", batch_size=4096)
        cached = BatchSearchExecutor(
            "sha3-256", batch_size=4096,
            cache=True, plan_cache=MaskPlanCache(),
        )
        reference = plain.search(base_seed, target, distance)
        result = cached.search(base_seed, target, distance)
        assert _result_fingerprint(result) == _result_fingerprint(reference)
        assert result.found and result.seed == client_seed


class TestMaskPlanCache:
    def test_eviction_respects_memory_bound(self):
        row_bytes = 32
        cache = MaskPlanCache(max_bytes=256 * row_bytes, max_plan_bytes=256 * row_bytes)
        for lo in range(0, 4096, 256):
            cache.get_or_build(2, lo, lo + 256, 128)
            assert cache.bytes_in_use <= cache.max_bytes
        assert cache.evictions > 0
        assert len(cache) >= 1
        cache.clear()
        assert cache.bytes_in_use == 0 and len(cache) == 0

    def test_oversized_plans_bypass_the_cache(self):
        cache = MaskPlanCache(max_bytes=1 << 20, max_plan_bytes=1 << 10)
        plan, hit = cache.get_or_build(3, 0, 100_000, 4096)
        assert plan is None and not hit
        assert cache.bypasses == 1 and cache.bytes_in_use == 0
        # The search still works without a plan — it streams.
        executor = BatchSearchExecutor(
            "sha1", batch_size=4096, cache=True, plan_cache=cache
        )
        result = executor.search(
            b"\x00" * 32, hashlib.sha1(b"miss").digest(), 1
        )
        assert not result.found and result.seeds_hashed == 1 + 256

    def test_clear_unlinks_shared_segments(self):
        cache = MaskPlanCache(max_bytes=1 << 20)
        plan, _ = cache.get_or_build(1, 0, 256, 128)
        descriptor = plan.descriptor()
        cache.clear()
        if descriptor is not None:  # shared-memory backing available
            assert attach_plan(descriptor) is None

    def test_attach_detach_round_trip(self):
        cache = MaskPlanCache(max_bytes=1 << 20)
        plan, _ = cache.get_or_build(1, 0, 256, 128)
        descriptor = plan.descriptor()
        if descriptor is None:
            pytest.skip("no shared-memory backing on this platform")
        attached = attach_plan(descriptor)
        assert attached is not None
        assert attached.masks.tobytes() == plan.masks.tobytes()
        detach_plan(attached)
        assert attached.shm is None
        cache.clear()

    def test_global_cache_is_a_singleton(self):
        assert global_plan_cache() is global_plan_cache()


class TestWarmPool:
    def test_pool_survives_100_searches_without_leaks(self, base_seed):
        """One spawn, 100 searches, stable process and descriptor counts."""
        hit_seed = flip_bits(base_seed, [7])
        hit_target = hashlib.sha1(hit_seed).digest()
        miss_target = hashlib.sha1(b"no such seed").digest()
        engine = PooledSearchExecutor(
            "sha1", workers=2, batch_size=1024,
            plan_cache=MaskPlanCache(max_bytes=1 << 22),
        )
        try:
            engine.search(base_seed, hit_target, 1)  # cold: spawn + plans
            pool = engine.pool
            assert pool is not None and pool.workers_spawned == 2
            fd_baseline = len(os.listdir("/proc/self/fd"))
            for i in range(99):
                target = hit_target if i % 2 == 0 else miss_target
                result = engine.search(base_seed, target, 1)
                if i % 2 == 0:
                    assert result.found and result.seed == hit_seed
                else:
                    assert not result.found
                    assert result.seeds_hashed == 1 + 256
                assert result.amortized is not None
                assert result.amortized.pool_reused
                assert result.amortized.workers_spawned == 2
            assert engine.pool is pool
            assert pool.searches_served == 100
            assert pool.workers_spawned == 2
            assert pool.alive_workers() == 2
            assert len(os.listdir("/proc/self/fd")) <= fd_baseline + 2
        finally:
            engine.close()
        assert engine.pool is None

    def test_pool_close_terminates_workers(self):
        pool = WorkerPool(workers=2)
        assert pool.alive_workers() == 2
        processes = list(pool._processes)
        pool.close()
        assert all(not p.is_alive() for p in processes)
        with pytest.raises(RuntimeError, match="closed"):
            pool.run_search(
                hash_name="sha1", batch_size=1024, iterator="unrank",
                fixed_padding=True, base_seed=b"\x00" * 32,
                target_digest=hashlib.sha1(b"x").digest(), max_distance=1,
                rank_ranges_by_worker=[{1: (0, 128)}, {1: (128, 256)}],
                time_budget=None,
            )
        pool.close()  # idempotent

    def test_concurrent_searches_share_one_pool(self, base_seed):
        """Two threads, one pool: per-search flag slots keep them isolated."""
        import threading

        hit_seed = flip_bits(base_seed, [3])
        hit_target = hashlib.sha1(hit_seed).digest()
        miss_target = hashlib.sha1(b"no such seed").digest()
        engine = PooledSearchExecutor(
            "sha1", workers=2, batch_size=1024,
            plan_cache=MaskPlanCache(max_bytes=1 << 22),
        )
        results: dict[str, object] = {}
        try:
            engine.search(base_seed, miss_target, 1)  # warm up

            def run(name, target):
                results[name] = engine.search(base_seed, target, 1)

            threads = [
                threading.Thread(target=run, args=("hit", hit_target)),
                threading.Thread(target=run, args=("miss", miss_target)),
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert results["hit"].found and results["hit"].seed == hit_seed
            assert not results["miss"].found
            # The miss search ran to exhaustion: the hit search's
            # early-exit flag did not leak into its slot.
            assert results["miss"].seeds_hashed == 1 + 256
        finally:
            engine.close()


class TestServerReusesPool:
    def test_server_metrics_and_pool_release(self, small_authority):
        from repro.net.concurrent import ConcurrentCAServer

        authority, client, mask = small_authority
        engine = PooledSearchExecutor(
            authority.hash_name, workers=2, batch_size=8192,
            plan_cache=MaskPlanCache(),
        )
        authority.search_service.engine = engine
        with ConcurrentCAServer(authority, workers=1) as server:
            for _ in range(3):
                challenge = authority.issue_challenge(client.client_id)
                digest = client.respond(challenge, reference_mask=mask)
                result = server.submit(client.client_id, digest).result(timeout=60)
                assert result.authenticated
            snapshot = server.metrics.snapshot()
            pool = engine.pool
            assert pool is not None and pool.searches_served == 3
        # One pool served all three requests: two of them found it warm,
        # and every request after the first hit cached plans.
        assert snapshot["pool_reuses"] == 2
        assert snapshot["plan_hits"] > 0
        # Exiting the context called server.close(), which released the
        # pooled backend.
        assert engine.pool is None
        assert pool.alive_workers() == 0


class TestAffinityDefaults:
    def test_default_worker_count_respects_cpuset(self):
        expected = len(os.sched_getaffinity(0))
        assert default_worker_count() == expected
        assert ParallelSearchExecutor("sha1").workers == expected
        pooled = PooledSearchExecutor("sha1")
        assert pooled.workers == expected
        pooled.close()


class TestSatellites:
    def test_parallel_describe_round_trips_iterator(self):
        engine = ParallelSearchExecutor(
            "sha1", workers=2, batch_size=1024, iterator="gosper"
        )
        spec = engine.describe()
        assert "it=gosper" in spec
        rebuilt = build_engine(spec)
        assert rebuilt.describe() == spec
        # Default iterator stays out of the spec, as before.
        assert "it=" not in ParallelSearchExecutor("sha1", workers=2).describe()

    def test_throughput_probe_breakdown(self):
        probe = BatchSearchExecutor("sha3-256").throughput_probe(
            2000, breakdown=True
        )
        assert set(probe) == {"unrank", "mask", "hash", "compare", "total"}
        assert all(rate > 0 for rate in probe.values())
        # The scalar probe still returns a plain float.
        assert isinstance(
            BatchSearchExecutor("sha1").throughput_probe(2000), float
        )

    def test_keccak_kernel_matches_hashlib_on_random_batches(self, rng):
        for size in (1, 7, 64, 257):
            words = rng.integers(
                0, 1 << 63, size=(size, 4), dtype=np.int64
            ).astype(np.uint64)
            snapshot = words.copy()
            digests = sha3_256_batch_seeds(words)
            again = sha3_256_batch_seeds(words)
            assert np.array_equal(words, snapshot)  # inputs untouched
            assert np.array_equal(digests, again)  # scratch reuse is clean
            for i in range(size):
                seed = words_to_seed(words[i])
                expected = hashlib.sha3_256(seed).digest()
                assert digests[i].tobytes() == expected

    def test_telemetry_hooks_accumulate_amortization(self, base_seed):
        hooks = TelemetryHooks()
        executor = BatchSearchExecutor(
            "sha1", batch_size=1024, hooks=hooks,
            cache=True, plan_cache=MaskPlanCache(),
        )
        target = hashlib.sha1(b"no such seed").digest()
        executor.search(base_seed, target, 1)
        executor.search(base_seed, target, 1)
        snap = hooks.snapshot()
        assert snap["plan_misses"] >= 1
        assert snap["plan_hits"] >= 1
        hooks.on_amortization(AmortizationStats(pool_reused=True))
        assert hooks.snapshot()["pool_reuses"] == 1

    def test_warm_option_prebuilds_plans(self, base_seed):
        cache = MaskPlanCache()
        executor = BatchSearchExecutor(
            "sha1", batch_size=1024, warm=1, plan_cache=cache
        )
        assert executor.cache  # warm implies cache
        assert cache.misses == 1  # the d=1 full-range plan
        target = hashlib.sha1(b"no such seed").digest()
        result = executor.search(base_seed, target, 1)
        assert result.amortized is not None
        assert result.amortized.plan_hits == 1
        assert result.amortized.plan_misses == 0
