"""Unit tests for repro._bitutils — representation conversions."""

import numpy as np
import pytest

from repro._bitutils import (
    SEED_BITS,
    SEED_BYTES,
    flip_bits,
    hamming_distance,
    hamming_distance_words,
    int_to_seed,
    popcount64,
    positions_to_mask_int,
    positions_to_mask_words,
    random_seed,
    rotate_left_int,
    seed_to_int,
    seed_to_words,
    seeds_to_words,
    words_to_seed,
    words_to_seeds,
)


class TestIntConversion:
    def test_roundtrip_zero(self):
        assert seed_to_int(int_to_seed(0)) == 0

    def test_roundtrip_max(self):
        value = (1 << SEED_BITS) - 1
        assert seed_to_int(int_to_seed(value)) == value

    def test_big_endian_convention(self):
        # Bit 0 is the LSB of the integer => last byte of the seed.
        seed = int_to_seed(1)
        assert seed[-1] == 1 and seed[:-1] == bytes(SEED_BYTES - 1)

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            seed_to_int(b"\x00" * 31)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            int_to_seed(1 << SEED_BITS)
        with pytest.raises(ValueError):
            int_to_seed(-1)


class TestWordConversion:
    def test_word_zero_holds_low_bits(self):
        words = seed_to_words(int_to_seed(0xDEADBEEF))
        assert words[0] == 0xDEADBEEF and words[1:].sum() == 0

    def test_roundtrip_single(self, rng):
        seed = rng.bytes(32)
        assert words_to_seed(seed_to_words(seed)) == seed

    def test_batch_matches_scalar(self, rng):
        seeds = [rng.bytes(32) for _ in range(17)]
        batch = seeds_to_words(seeds)
        for i, seed in enumerate(seeds):
            assert (batch[i] == seed_to_words(seed)).all()

    def test_batch_roundtrip(self, rng):
        seeds = [rng.bytes(32) for _ in range(9)]
        assert words_to_seeds(seeds_to_words(seeds)) == seeds

    def test_empty_batch(self):
        assert seeds_to_words([]).shape == (0, 4)

    def test_words_shape_validation(self):
        with pytest.raises(ValueError):
            words_to_seed(np.zeros(3, dtype=np.uint64))
        with pytest.raises(ValueError):
            words_to_seeds(np.zeros((2, 3), dtype=np.uint64))


class TestHamming:
    def test_identical_is_zero(self, base_seed):
        assert hamming_distance(base_seed, base_seed) == 0

    def test_single_flip(self, base_seed):
        assert hamming_distance(base_seed, flip_bits(base_seed, [100])) == 1

    def test_all_bits(self):
        a = bytes(32)
        b = b"\xff" * 32
        assert hamming_distance(a, b) == 256

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            hamming_distance(b"\x00", b"\x00\x00")

    def test_words_matches_bytes(self, rng):
        seeds_a = [rng.bytes(32) for _ in range(20)]
        seeds_b = [rng.bytes(32) for _ in range(20)]
        batch = hamming_distance_words(seeds_to_words(seeds_a), seeds_to_words(seeds_b))
        for i in range(20):
            assert batch[i] == hamming_distance(seeds_a[i], seeds_b[i])

    def test_popcount64_extremes(self):
        arr = np.array([0, 1, (1 << 64) - 1, 1 << 63], dtype=np.uint64)
        assert popcount64(arr).tolist() == [0, 1, 64, 1]


class TestFlipAndMasks:
    def test_flip_is_involution(self, base_seed):
        assert flip_bits(flip_bits(base_seed, [3, 77]), [3, 77]) == base_seed

    def test_flip_rejects_out_of_range(self, base_seed):
        with pytest.raises(ValueError):
            flip_bits(base_seed, [256])

    def test_mask_int_matches_flip(self, base_seed):
        positions = [0, 63, 64, 255]
        mask = positions_to_mask_int(positions)
        flipped = int_to_seed(seed_to_int(base_seed) ^ mask)
        assert flipped == flip_bits(base_seed, positions)

    def test_mask_int_rejects_duplicates(self):
        with pytest.raises(ValueError):
            positions_to_mask_int([5, 5])

    def test_mask_words_matches_mask_int(self):
        positions = np.array([[0, 63, 64, 255], [1, 2, 3, 4]])
        masks = positions_to_mask_words(positions)
        for row, pos in zip(masks, positions):
            expected = positions_to_mask_int(pos.tolist())
            got = sum(int(row[w]) << (64 * w) for w in range(4))
            assert got == expected

    def test_mask_words_single_row(self):
        masks = positions_to_mask_words(np.array([7, 8]))
        assert masks.shape == (1, 4)
        assert int(masks[0, 0]) == (1 << 7) | (1 << 8)


class TestMisc:
    def test_random_seed_length(self, rng):
        assert len(random_seed(rng)) == 32

    def test_rotate_roundtrip(self):
        value = 0x123456789ABCDEF
        assert rotate_left_int(rotate_left_int(value, 100), 156) == value

    def test_rotate_by_width_is_identity(self):
        assert rotate_left_int(42, 256) == 42
