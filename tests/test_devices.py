"""Device models: paper anchors, structural behaviours, shape properties.

The absolute anchors are matched by construction (calibration); the tests
here assert the *reproduced findings* — orderings, crossovers, parameter
sensitivity — plus tolerances on the anchors themselves.
"""

import pytest

from repro.devices import (
    APUModel,
    CPUModel,
    GPUModel,
    MultiGPUModel,
    speedup_curve,
)
from repro.devices.calibration import (
    A5,
    U5,
    PRIOR_WORK_KEYGEN_RATE,
)


@pytest.fixture(scope="module")
def gpu():
    return GPUModel()


@pytest.fixture(scope="module")
def cpu():
    return CPUModel()


@pytest.fixture(scope="module")
def apu():
    return APUModel()


class TestTable5Anchors:
    """Modeled times must land within 5% of every Table 5 search time."""

    @pytest.mark.parametrize(
        "hash_name,mode,paper",
        [
            ("sha1", "exhaustive", 1.56),
            ("sha3-256", "exhaustive", 4.67),
            ("sha1", "average", 0.85),
            ("sha3-256", "average", 2.42),
        ],
    )
    def test_gpu(self, gpu, hash_name, mode, paper):
        assert gpu.search_time(hash_name, 5, mode) == pytest.approx(paper, rel=0.05)

    @pytest.mark.parametrize(
        "hash_name,mode,paper",
        [
            ("sha1", "exhaustive", 1.62),
            ("sha3-256", "exhaustive", 13.95),
            ("sha1", "average", 0.83),
            ("sha3-256", "average", 7.05),
        ],
    )
    def test_apu(self, apu, hash_name, mode, paper):
        assert apu.search_time(hash_name, 5, mode) == pytest.approx(paper, rel=0.05)

    @pytest.mark.parametrize(
        "hash_name,mode,paper",
        [
            ("sha1", "exhaustive", 12.09),
            ("sha3-256", "exhaustive", 60.68),
            ("sha1", "average", 6.04),
            ("sha3-256", "average", 30.52),
        ],
    )
    def test_cpu(self, cpu, hash_name, mode, paper):
        assert cpu.search_time(hash_name, 5, mode) == pytest.approx(paper, rel=0.05)


class TestCrossPlatformFindings:
    """Section 4.6's qualitative conclusions."""

    def test_gpu_apu_parity_on_sha1(self, gpu, apu):
        ratio = apu.search_time("sha1", 5) / gpu.search_time("sha1", 5)
        assert 0.9 < ratio < 1.1  # "roughly equivalent"

    def test_gpu_beats_apu_on_sha3_by_3x(self, gpu, apu):
        ratio = apu.search_time("sha3-256", 5) / gpu.search_time("sha3-256", 5)
        assert 2.5 < ratio < 3.5  # paper: 2.99x

    def test_both_accelerators_beat_cpu(self, gpu, cpu, apu):
        for h in ("sha1", "sha3-256"):
            assert gpu.search_time(h, 5) < cpu.search_time(h, 5)
            assert apu.search_time(h, 5) < cpu.search_time(h, 5)

    def test_T_threshold_verdicts(self, gpu, cpu, apu):
        # Everyone meets T=20 on SHA-1; only the CPU misses it on SHA-3.
        for model in (gpu, cpu, apu):
            assert model.search_time("sha1", 5) < 20.0
        assert gpu.search_time("sha3-256", 5) < 20.0
        assert apu.search_time("sha3-256", 5) < 20.0
        assert cpu.search_time("sha3-256", 5) > 20.0

    def test_average_faster_than_exhaustive(self, gpu, cpu, apu):
        for model in (gpu, cpu, apu):
            for h in ("sha1", "sha3-256"):
                assert model.search_time(h, 5, "average") < model.search_time(h, 5)


class TestGPUStructure:
    def test_iterator_ordering_matches_table4(self, gpu):
        chase = gpu.search_time("sha3-256", 5, iterator="chase")
        gosper = gpu.search_time("sha3-256", 5, iterator="gosper")
        alg515 = gpu.search_time("sha3-256", 5, iterator="alg515")
        assert chase < gosper < alg515
        assert gosper / chase == pytest.approx(6.04 / 4.67, rel=0.03)
        assert alg515 / chase == pytest.approx(7.53 / 4.67, rel=0.03)

    def test_unknown_iterator_rejected(self, gpu):
        with pytest.raises(ValueError):
            gpu.search_time("sha3-256", 5, iterator="hilbert")

    def test_fixed_padding_saves_about_3_percent(self, gpu):
        fast = gpu.search_time("sha3-256", 5, fixed_padding=True)
        slow = gpu.search_time("sha3-256", 5, fixed_padding=False)
        assert slow / fast == pytest.approx(1.03, abs=0.01)

    def test_shared_memory_state_speedups(self, gpu):
        # Section 3.2.3: 1.20x for SHA-1, 1.01x for SHA-3.
        for h, factor in (("sha1", 1.20), ("sha3-256", 1.01)):
            fast = gpu.search_time(h, 5, shared_memory_state=True)
            slow = gpu.search_time(h, 5, shared_memory_state=False)
            assert slow / fast == pytest.approx(factor, abs=0.02)

    def test_grid_search_optimum_at_paper_parameters(self, gpu):
        times = {
            (n, b): gpu.search_time("sha3-256", 5, seeds_per_thread=n, threads_per_block=b)
            for n in (10, 25, 50, 100, 200, 400, 800)
            for b in (32, 64, 128, 256, 512, 1024)
        }
        assert min(times, key=times.get) == (100, 128)

    def test_plateau_is_wide(self, gpu):
        # "several sets of parameters achieve similarly good performance"
        best = gpu.search_time("sha3-256", 5, seeds_per_thread=100, threads_per_block=128)
        near = gpu.search_time("sha3-256", 5, seeds_per_thread=200, threads_per_block=256)
        assert near / best < 1.02

    def test_single_seed_per_thread_hurts(self, gpu):
        best = gpu.search_time("sha3-256", 5, seeds_per_thread=100)
        worst = gpu.search_time("sha3-256", 5, seeds_per_thread=1)
        assert worst > best * 1.01

    def test_undersubscription_hurts_badly(self, gpu):
        best = gpu.search_time("sha3-256", 5, seeds_per_thread=100)
        starved = gpu.search_time("sha3-256", 5, seeds_per_thread=500_000)
        assert starved > 5 * best

    def test_parameter_validation(self, gpu):
        with pytest.raises(ValueError):
            gpu.search_time("sha1", 5, seeds_per_thread=0)
        with pytest.raises(ValueError):
            gpu.search_time("sha1", 5, mode="middling")
        with pytest.raises(ValueError):
            gpu.occupancy(2000)

    def test_simulate_search_record(self, gpu):
        timing = gpu.simulate_search("sha3-256", 5)
        assert timing.seeds_searched == U5
        assert timing.energy_joules == pytest.approx(946.55, rel=0.05)
        assert timing.kernels_launched == 5


class TestCPUStructure:
    def test_strong_scaling_anchors(self, cpu):
        assert cpu.speedup("sha1", 64) == pytest.approx(59, rel=0.01)
        assert cpu.speedup("sha3-256", 64) == pytest.approx(63, rel=0.01)

    def test_scaling_monotonic(self, cpu):
        speeds = [cpu.speedup("sha3-256", p) for p in (1, 2, 4, 8, 16, 32, 64)]
        assert speeds == sorted(speeds)
        assert speeds[0] == pytest.approx(1.0)

    def test_cluster_scaling_future_work(self, cpu):
        # Section 5: multi-node CPU scaling should bring SHA-3 under T=20.
        single = cpu.cluster_time("sha3-256", 5, nodes=1)
        quad = cpu.cluster_time("sha3-256", 5, nodes=4)
        assert single > 20.0 > quad
        assert quad > single / 4  # network overhead costs something

    def test_cluster_validation(self, cpu):
        with pytest.raises(ValueError):
            cpu.cluster_time("sha1", 5, nodes=0)

    def test_threads_validation(self, cpu):
        with pytest.raises(ValueError):
            cpu.search_time("sha1", 5, threads=0)

    def test_shell_partition_consistency(self, cpu):
        ranges = cpu.shell_partition(2, 64)
        assert len(ranges) == 64 and ranges[-1][1] == 32640


class TestAPUStructure:
    def test_pe_counts_match_paper(self, apu):
        assert apu.pe_count("sha1") == 65536      # "65k PEs for SHA-1"
        assert apu.pe_count("sha3-256") == 26176  # "26k PEs for SHA-3"

    def test_pe_ratio_is_2_5x(self, apu):
        assert apu.pe_count("sha1") / apu.pe_count("sha3-256") == pytest.approx(2.5, rel=0.01)

    def test_footprint_drives_the_sha3_deficit(self, apu, gpu):
        """The paper's architectural explanation: SHA-3 loses on the APU
        because of PE starvation, not per-PE slowness alone."""
        sha1_ratio = apu.search_time("sha1", 5) / gpu.search_time("sha1", 5)
        sha3_ratio = apu.search_time("sha3-256", 5) / gpu.search_time("sha3-256", 5)
        assert sha3_ratio > 2 * sha1_ratio

    def test_multi_apu_form_factor_scaling(self):
        # Section 5 future work: 8 APUs in a 2U chassis.
        one = APUModel(num_apus=1).search_time("sha3-256", 5)
        eight = APUModel(num_apus=8).search_time("sha3-256", 5)
        assert one / eight == pytest.approx(8, rel=0.05)
        # 8 APUs bring SHA-3 under the single-GPU time.
        assert eight < GPUModel().search_time("sha3-256", 5)

    def test_num_apus_validation(self):
        with pytest.raises(ValueError):
            APUModel(num_apus=0)

    def test_simulate_search_energy(self, apu):
        timing = apu.simulate_search("sha3-256", 5)
        assert timing.energy_joules == pytest.approx(974.06, rel=0.05)


class TestEnergyFindings:
    def test_apu_wins_sha1_energy_by_60_percent(self, gpu, apu):
        gpu_j = gpu.simulate_search("sha1", 5).energy_joules
        apu_j = apu.simulate_search("sha1", 5).energy_joules
        assert apu_j / gpu_j == pytest.approx(0.392, rel=0.1)  # paper: 39.2%

    def test_sha3_energy_roughly_equal(self, gpu, apu):
        gpu_j = gpu.simulate_search("sha3-256", 5).energy_joules
        apu_j = apu.simulate_search("sha3-256", 5).energy_joules
        assert apu_j / gpu_j == pytest.approx(1.0, abs=0.15)

    def test_apu_power_is_much_lower(self, gpu, apu):
        assert apu.spec.max_watts < gpu.spec.max_watts / 2
        assert apu.spec.idle_watts < gpu.spec.idle_watts


class TestMultiGPU:
    def test_figure4_sha3_exhaustive_speedup(self):
        points = speedup_curve("sha3-256", "exhaustive", 3)
        assert points[2].speedup == pytest.approx(2.87, rel=0.02)

    def test_figure4_sha3_early_exit_speedup(self):
        points = speedup_curve("sha3-256", "average", 3)
        assert points[2].speedup == pytest.approx(2.66, rel=0.02)

    def test_exhaustive_scales_better_than_early_exit(self):
        for h in ("sha1", "sha3-256"):
            exh = speedup_curve(h, "exhaustive", 3)[2].speedup
            avg = speedup_curve(h, "average", 3)[2].speedup
            assert exh > avg

    def test_sha3_scales_better_than_sha1(self):
        for mode in ("exhaustive", "average"):
            sha3 = speedup_curve("sha3-256", mode, 3)[2].speedup
            sha1 = speedup_curve("sha1", mode, 3)[2].speedup
            assert sha3 > sha1

    def test_speedup_monotonic_in_gpus(self):
        points = speedup_curve("sha3-256", "exhaustive", 3)
        assert points[0].speedup < points[1].speedup < points[2].speedup

    def test_efficiency_degrades(self):
        points = speedup_curve("sha3-256", "exhaustive", 3)
        assert points[0].efficiency > points[2].efficiency

    def test_shell_partition(self):
        from repro.combinatorics.binomial import binomial

        model = MultiGPUModel(3)
        parts = model.shell_partition(5)
        assert len(parts) == 3
        assert parts[0][0] == 0
        assert parts[-1][1] == binomial(256, 5)  # full shell covered

    def test_validation(self):
        with pytest.raises(ValueError):
            MultiGPUModel(0)


class TestPriorWorkCalibration:
    def test_keygen_rates_ordered_by_cost(self):
        # AES >> SABER > Dilithium in candidates/second on both platforms.
        for platform in ("gpu", "cpu"):
            aes = PRIOR_WORK_KEYGEN_RATE[("aes-128", platform)]
            saber = PRIOR_WORK_KEYGEN_RATE[("lightsaber", platform)]
            dil = PRIOR_WORK_KEYGEN_RATE[("dilithium3", platform)]
            assert aes > saber > dil
