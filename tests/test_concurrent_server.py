"""Concurrent CA server: pooling, admission control, metrics."""

import numpy as np
import pytest

from repro.core import (
    CertificateAuthority,
    RBCSearchService,
    RegistrationAuthority,
)
from repro.core.protocol import ClientDevice
from repro.core.salting import HashChainSalt
from repro.keygen.interface import get_keygen
from repro.net.concurrent import ConcurrentCAServer, ServerMetrics
from repro.net.errors import ServerClosed
from repro.puf.image_db import EncryptedImageDatabase
from repro.puf.model import SRAMPuf
from repro.puf.ternary import enroll_with_masking
from repro.runtime.executor import BatchSearchExecutor


@pytest.fixture
def fleet_authority():
    authority = CertificateAuthority(
        search_service=RBCSearchService(
            BatchSearchExecutor("sha1", batch_size=8192), max_distance=1
        ),
        salt=HashChainSalt(),
        keygen=get_keygen("aes-128"),
        registration_authority=RegistrationAuthority(),
        image_db=EncryptedImageDatabase(b"concurrent-mastr"),
        hash_name="sha1",
    )
    clients = []
    for i in range(6):
        puf = SRAMPuf(num_cells=2048, stable_error=0.001, seed=9000 + i)
        mask = enroll_with_masking(puf, 0, 2048, reads=48,
                                   instability_threshold=0.02)
        client_id = f"c{i}"
        authority.enroll(client_id, mask)
        device = ClientDevice(client_id, puf, noise_target_distance=1,
                              rng=np.random.default_rng(i))
        clients.append((client_id, device, mask))
    return authority, clients


def _digest_for(authority, client_id, device, mask):
    challenge = authority.issue_challenge(client_id)
    return device.respond(challenge, reference_mask=mask)


class TestConcurrentServer:
    def test_parallel_fleet_authenticates(self, fleet_authority):
        authority, clients = fleet_authority
        with ConcurrentCAServer(authority, workers=3) as server:
            futures = []
            for client_id, device, mask in clients:
                digest = _digest_for(authority, client_id, device, mask)
                futures.append(server.submit(client_id, digest))
            results = [f.result(timeout=60) for f in futures]
        assert all(r.authenticated for r in results)
        snapshot = server.metrics.snapshot()
        assert snapshot["completed"] == 6
        assert snapshot["authenticated"] == 6

    def test_duplicate_in_flight_rejected(self, fleet_authority):
        import threading

        authority, clients = fleet_authority
        client_id, device, mask = clients[0]
        digest = _digest_for(authority, client_id, device, mask)
        other_digest = _digest_for(
            authority, clients[1][0], clients[1][1], clients[1][2]
        )
        gate = threading.Event()
        original = authority.run_search

        def gated(cid, d):
            gate.wait(timeout=30)
            return original(cid, d)

        authority.run_search = gated
        try:
            with ConcurrentCAServer(authority, workers=1) as server:
                first = server.submit(clients[1][0], other_digest)
                second = server.submit(client_id, digest)  # queued behind
                with pytest.raises(RuntimeError, match="in flight"):
                    server.submit(client_id, digest)
                gate.set()
                assert first.result(timeout=60) is not None
                assert second.result(timeout=60).authenticated
        finally:
            authority.run_search = original
        assert server.metrics.snapshot()["rejected_duplicate"] == 1

    def test_saturation_rejects(self, fleet_authority):
        import threading

        authority, clients = fleet_authority
        gate = threading.Event()
        original = authority.run_search

        def gated(client_id, digest):
            gate.wait(timeout=30)
            return original(client_id, digest)

        authority.run_search = gated
        try:
            with ConcurrentCAServer(authority, workers=1, max_queue=2) as server:
                submitted = []
                rejected = 0
                for client_id, device, mask in clients[:4]:
                    digest = _digest_for(authority, client_id, device, mask)
                    try:
                        submitted.append(server.submit(client_id, digest))
                    except RuntimeError:
                        rejected += 1
                gate.set()  # unblock the worker
                for future in submitted:
                    future.result(timeout=60)
        finally:
            authority.run_search = original
        assert rejected >= 1
        assert server.metrics.snapshot()["rejected_busy"] >= 1

    def test_closed_server_rejects(self, fleet_authority):
        authority, clients = fleet_authority
        server = ConcurrentCAServer(authority, workers=1)
        server.close()
        server.close()  # idempotent
        client_id, device, mask = clients[0]
        with pytest.raises(ServerClosed, match="closed"):
            server.submit(client_id, b"\x00" * 20)

    def test_failed_auth_counted_but_not_authenticated(self, fleet_authority):
        authority, clients = fleet_authority
        from repro.hashes.sha1 import sha1

        with ConcurrentCAServer(authority, workers=2) as server:
            future = server.submit("c0", sha1(b"not the right seed" + b"\x00" * 14))
            result = future.result(timeout=60)
        assert not result.authenticated
        snapshot = server.metrics.snapshot()
        assert snapshot["completed"] == 1 and snapshot["authenticated"] == 0

    def test_validation(self, fleet_authority):
        authority, _clients = fleet_authority
        with pytest.raises(ValueError):
            ConcurrentCAServer(authority, workers=0)
        with pytest.raises(ValueError):
            ConcurrentCAServer(authority, max_queue=0)

    def test_backend_exception_recorded_as_failed(self, fleet_authority):
        authority, clients = fleet_authority
        original = authority.run_search

        def exploding(client_id, digest):
            raise RuntimeError("backend died")

        authority.run_search = exploding
        try:
            with ConcurrentCAServer(authority, workers=1) as server:
                future = server.submit("c0", b"\x00" * 20)
                with pytest.raises(RuntimeError, match="backend died"):
                    future.result(timeout=60)
        finally:
            authority.run_search = original
        snapshot = server.metrics.snapshot()
        # The failed search is accounted, not silently dropped:
        # submitted == completed + failed.
        assert snapshot["failed"] == 1
        assert snapshot["completed"] == 0
        assert snapshot["submitted"] == 1


class TestServerMetricsRecord:
    def test_record_is_the_single_write_path(self):
        metrics = ServerMetrics()
        metrics.record(submitted=2, completed=1, authenticated=1,
                       failed=1, search_seconds=0.5)
        metrics.record(rejected_busy=1, rejected_duplicate=2,
                       rejected_open=3, seeds_hashed=257, shells_completed=2)
        metrics.record(plan_hits=4, plan_misses=1, pool_reuses=1)
        metrics.record(preempted=1, queue_depth=5)
        metrics.record(queue_depth=3)  # gauge: peak is kept, not summed
        metrics.record(redispatched=3, hedged=2)
        metrics.record(directory_hot_hits=4, directory_hot_misses=2,
                       directory_failovers=1, directory_read_repairs=2)
        metrics.record_shed("deadline_expired")
        metrics.record_shed("deadline_expired")
        metrics.record_shed("directory_unavailable")
        metrics.record_shed("tenant_quota")
        metrics.record_enrollment()
        metrics.record_enrollment()
        metrics.record_recovery(records=7, seconds=0.25)
        snapshot = metrics.snapshot()
        assert snapshot == {
            "submitted": 2,
            "completed": 1,
            "authenticated": 1,
            "failed": 1,
            "rejected_busy": 1,
            "rejected_duplicate": 2,
            "rejected_open": 3,
            "total_search_seconds": 0.5,
            "seeds_hashed": 257,
            "shells_completed": 2,
            "plan_hits": 4,
            "plan_misses": 1,
            "pool_reuses": 1,
            "shed": 4,
            "preempted": 1,
            "queue_depth_peak": 5,
            "redispatched": 3,
            "hedged": 2,
            "directory_hot_hits": 4,
            "directory_hot_misses": 2,
            "directory_failovers": 1,
            "directory_read_repairs": 2,
            "shed_directory": 1,
            "shed_tenant_quota": 1,
            "enrollments": 2,
            "recovered_records": 7,
            "recovery_seconds": 0.25,
        }

    def test_shed_reasons_can_never_drift_from_the_total(self):
        """record_shed is the only shed path: per-reason counts sum to it."""
        metrics = ServerMetrics()
        # record() deliberately has no shed kwarg anymore.
        with pytest.raises(TypeError):
            metrics.record(shed=1)
        for reason in ("saturated", "deadline_expired", "saturated",
                       "tenant_quota", "directory_unavailable"):
            metrics.record_shed(reason)
        snapshot = metrics.snapshot()
        breakdown = metrics.shed_breakdown()
        assert sum(breakdown.values()) == snapshot["shed"] == 5
        assert breakdown == {
            "saturated": 2,
            "deadline_expired": 1,
            "tenant_quota": 1,
            "directory_unavailable": 1,
        }
        # Derived convenience counters follow the typed reasons exactly.
        assert snapshot["shed_directory"] == 1
        assert snapshot["shed_tenant_quota"] == 1

    def test_record_is_thread_safe(self):
        import threading

        metrics = ServerMetrics()

        def hammer():
            for _ in range(500):
                metrics.record(submitted=1, search_seconds=0.001)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snapshot = metrics.snapshot()
        assert snapshot["submitted"] == 4000
        assert snapshot["total_search_seconds"] == pytest.approx(4.0)

    def test_concurrent_record_from_many_threads_loses_nothing(self):
        """Mixed record/record_shed hammering from many threads stays exact."""
        import threading

        metrics = ServerMetrics()
        workers, rounds = 12, 300

        def hammer(worker: int):
            tenant = f"tenant-{worker % 3}"
            for i in range(rounds):
                metrics.record(
                    submitted=1,
                    completed=1,
                    search_seconds=0.001,
                    tenant_id=tenant,
                )
                if i % 3 == 0:
                    metrics.record_shed(
                        "tenant_quota" if i % 2 else "saturated",
                        tenant_id=tenant,
                    )

        threads = [
            threading.Thread(target=hammer, args=(w,)) for w in range(workers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snapshot = metrics.snapshot()
        assert snapshot["submitted"] == workers * rounds
        assert snapshot["completed"] == workers * rounds
        sheds_each = len([i for i in range(rounds) if i % 3 == 0])
        assert snapshot["shed"] == workers * sheds_each
        assert sum(metrics.shed_breakdown().values()) == snapshot["shed"]
        per_tenant = metrics.tenant_snapshot()
        assert set(per_tenant) == {"tenant-0", "tenant-1", "tenant-2"}
        assert sum(t["submitted"] for t in per_tenant.values()) == (
            workers * rounds
        )
        assert sum(t["shed"] for t in per_tenant.values()) == snapshot["shed"]
        quota_hits = sum(t["quota_hits"] for t in per_tenant.values())
        assert quota_hits == metrics.shed_breakdown()["tenant_quota"]
        for stats in per_tenant.values():
            assert stats["p99_seconds"] == pytest.approx(0.001)


class TestAdmissionControlUnderConcurrency:
    def test_saturation_storm_keeps_counters_consistent(self, fleet_authority):
        """Many threads push past max_queue; nothing leaks or double-counts."""
        import threading

        authority, clients = fleet_authority
        gate = threading.Event()
        original = authority.run_search

        def gated(client_id, digest):
            gate.wait(timeout=30)
            return original(client_id, digest)

        authority.run_search = gated
        max_queue = 3
        attempts_per_thread = 4
        threads = 8
        accepted, rejected_busy, rejected_dup = [], [], []
        record_lock = threading.Lock()

        try:
            with ConcurrentCAServer(
                authority, workers=2, max_queue=max_queue
            ) as server:
                digests = {
                    client_id: _digest_for(authority, client_id, device, mask)
                    for client_id, device, mask in clients
                }

                def storm(thread_index):
                    for attempt in range(attempts_per_thread):
                        client_id, _device, _mask = clients[
                            (thread_index + attempt) % len(clients)
                        ]
                        try:
                            future = server.submit(client_id, digests[client_id])
                            with record_lock:
                                accepted.append(future)
                        except RuntimeError as exc:
                            with record_lock:
                                if "saturated" in str(exc):
                                    rejected_busy.append(client_id)
                                else:
                                    rejected_dup.append(client_id)

                    # In-flight load never exceeds the admission limit.
                    assert server._pending <= max_queue

                workers = [
                    threading.Thread(target=storm, args=(i,))
                    for i in range(threads)
                ]
                for t in workers:
                    t.start()
                gate.set()
                for t in workers:
                    t.join()
                results = [f.result(timeout=60) for f in accepted]
        finally:
            authority.run_search = original

        snapshot = server.metrics.snapshot()
        total_attempts = threads * attempts_per_thread
        # Every attempt is accounted exactly once.
        assert (
            len(accepted) + len(rejected_busy) + len(rejected_dup)
            == total_attempts
        )
        assert snapshot["submitted"] == len(accepted)
        assert snapshot["rejected_busy"] == len(rejected_busy)
        assert snapshot["rejected_duplicate"] == len(rejected_dup)
        # Every accepted search finished (this backend cannot fail).
        assert snapshot["completed"] == len(accepted)
        assert snapshot["failed"] == 0
        assert all(r.authenticated for r in results)
        # The queue fully drained.
        assert server._pending == 0
        assert not server._in_flight_clients

    def test_breaker_guards_the_backend(self, fleet_authority):
        from repro.reliability.breaker import (
            CircuitBreaker,
            CircuitOpenError,
        )
        from repro.reliability.faults import VirtualClock

        authority, clients = fleet_authority
        clock = VirtualClock()
        breaker = CircuitBreaker(
            failure_threshold=1, recovery_seconds=60.0, clock=clock.now
        )
        original = authority.run_search

        def exploding(client_id, digest):
            raise RuntimeError("sick accelerator")

        authority.run_search = exploding
        try:
            with ConcurrentCAServer(
                authority, workers=1, breaker=breaker
            ) as server:
                with pytest.raises(RuntimeError, match="sick accelerator"):
                    server.submit("c0", b"\x00" * 20).result(timeout=60)
                # Breaker now open: refused without touching the backend.
                authority.run_search = original
                with pytest.raises(CircuitOpenError):
                    server.submit("c1", b"\x00" * 20).result(timeout=60)
        finally:
            authority.run_search = original
        snapshot = server.metrics.snapshot()
        assert snapshot["rejected_open"] == 1
        assert snapshot["failed"] == 2
        assert breaker.state == "open"


class TestFleetBackedServer:
    """Satellite: close() drain-or-cancel while a fleet device is
    quarantined mid-drain — no hang, typed ServerClosed afterwards."""

    def test_close_drains_on_survivor_while_device_quarantined(
        self, fleet_authority
    ):
        from repro.fleet import FleetSearchEngine

        authority, clients = fleet_authority
        fleet = FleetSearchEngine(
            "host",
            "host",
            hash_name="sha1",
            batch_size=8192,
            heartbeat_seconds=0.01,
        )
        server = ConcurrentCAServer(authority, scheduler=fleet)
        futures = []
        for client_id, device, mask in clients[:4]:
            digest = _digest_for(authority, client_id, device, mask)
            futures.append(server.submit(client_id, digest))
        # Kill one device while its share of the work is in flight; the
        # drain must complete on the survivor without hanging.
        victim = fleet.scheduler.devices[-1].name
        fleet.scheduler.kill_device(victim)
        server.close(wait=True)
        results = [f.result(timeout=1.0) for f in futures]  # all settled
        assert all(r.authenticated for r in results)
        with pytest.raises(ServerClosed):
            server.submit("late", b"\x00" * 20)
        snapshot = server.metrics.snapshot()
        assert snapshot["completed"] == len(results)
        # The fleet counters are part of the server's metric surface.
        assert "redispatched" in snapshot and "hedged" in snapshot
        assert snapshot["redispatched"] >= 0

    def test_fleet_backed_server_reports_redispatch(self, fleet_authority):
        from repro.fleet import FleetSearchEngine

        authority, clients = fleet_authority
        fleet = FleetSearchEngine(
            "host", "host", hash_name="sha1", batch_size=8192
        )
        with ConcurrentCAServer(authority, scheduler=fleet) as server:
            futures = []
            for client_id, device, mask in clients[:3]:
                digest = _digest_for(authority, client_id, device, mask)
                futures.append(server.submit(client_id, digest))
            results = [f.result(timeout=120) for f in futures]
        assert all(r.authenticated for r in results)
        snapshot = server.metrics.snapshot()
        assert snapshot["authenticated"] == len(results)
        assert snapshot["queue_depth_peak"] >= 1
