"""The unified engine stack: registry, wrappers, one result type.

Covers the spec grammar and option aliasing, wrapper geometry
forwarding (including dynamic failover routing and nested stacks),
telemetry hooks, the reliability guards, and — the heart of it — an
engine-equivalence matrix: every registered engine must find the same
planted seed at the same distance, and a zero time budget must yield
``timed_out=True`` uniformly when the target is absent.
"""

import numpy as np
import pytest

from repro._bitutils import flip_bits
from repro.engines import (
    DEFAULT_BATCH_SIZE,
    EngineConfig,
    EngineWrapper,
    NullHooks,
    SearchResult,
    ShellStats,
    TelemetryHooks,
    build_engine,
    describe_engine,
    engine_entries,
    engine_names,
    engine_target,
    merge_shells,
    register_engine,
)
from repro.engines.registry import get_entry
from repro.reliability.breaker import CircuitBreaker, CircuitOpenError
from repro.reliability.guards import BreakerGuardedEngine, RetryingEngine
from repro.reliability.retry import RetriesExhausted, RetryPolicy

RNG = np.random.default_rng(20260805)
BASE_SEED = RNG.bytes(32)

#: One spec per engine family — every row must behave identically on
#: the protocol surface. SHA-1 keeps the matrix fast.
HASH_ENGINE_SPECS = [
    "batch:sha1,bs=4096",
    "batch:sha1,bs=4096,it=chase",
    "batch:sha1,bs=4096,cache=yes",
    "parallel:sha1,w=2,bs=4096",
    "pool:sha1,w=2,bs=4096",
    "sched:sha1,bs=4096",
    "cluster:2,hash=sha1,bs=4096",
    "gpu-model:sha1,bs=4096",
]
ALL_ENGINE_SPECS = HASH_ENGINE_SPECS + ["original:aes-128,bs=4096"]


class TestSpecGrammar:
    def test_builtins_registered(self):
        assert {
            "batch", "parallel", "pool", "sched", "cluster", "original",
            "gpu-model", "apu-model", "cpu-model",
        } <= set(engine_names())

    def test_parse_round_trip(self):
        spec = "cluster:2,hash=sha1,bs=4096"
        assert EngineConfig.parse(spec).spec_string() == spec

    def test_positional_and_aliased_options(self):
        engine = build_engine("batch:sha1,bs=1024")
        assert engine.hash_name == "sha1"
        assert engine.batch_size == 1024

    def test_per_engine_alias(self):
        assert build_engine("parallel:sha1,w=2").workers == 2
        assert build_engine("cluster:r=3").ranks == 3

    def test_keyword_overrides_accept_aliases(self):
        engine = build_engine("batch", hash="sha1", bs=2048)
        assert engine.hash_name == "sha1"
        assert engine.batch_size == 2048

    def test_bool_coercion(self):
        assert build_engine("batch:sha1,fixed_padding=no").fixed_padding is False
        assert build_engine("batch:sha1,fixed_padding=yes").fixed_padding is True

    def test_dotted_spec_bypasses_registry(self):
        engine = build_engine(
            "repro.runtime.executor.BatchSearchExecutor:sha1,bs=512"
        )
        assert engine.batch_size == 512
        assert engine.hash_name == "sha1"

    def test_unknown_engine_lists_choices(self):
        with pytest.raises(KeyError, match="registered:"):
            build_engine("definitely-not-an-engine")

    def test_unknown_option_rejected(self):
        with pytest.raises(ValueError, match="no option"):
            build_engine("batch:sha1,warp_factor=9")

    def test_duplicate_option_rejected(self):
        with pytest.raises(ValueError, match="twice"):
            build_engine("batch:sha1,hash=sha256")

    def test_positional_after_keyword_rejected(self):
        with pytest.raises(ValueError, match="positional"):
            EngineConfig.parse("batch:bs=4096,sha1")

    def test_empty_spec_rejected(self):
        with pytest.raises(ValueError):
            build_engine("")

    def test_duplicate_registration_rejected(self):
        @register_engine("test-unique-engine", description="test")
        def _factory():  # pragma: no cover - never built
            raise AssertionError

        with pytest.raises(ValueError, match="already registered"):
            register_engine("test-unique-engine", description="dup")(_factory)

    def test_schema_rows_present(self):
        entry = get_entry("batch")
        params = [row[0] for row in entry.schema]
        assert "hash_name" in params and "batch_size" in params
        assert all(len(row) == 3 for row in entry.schema)

    def test_entries_sorted_and_described(self):
        entries = engine_entries()
        assert [e.name for e in entries] == sorted(e.name for e in entries)
        assert all(e.description for e in entries)


class TestEquivalenceMatrix:
    """Same protocol answer from every engine, per Algorithm 1."""

    @pytest.mark.parametrize("spec", ALL_ENGINE_SPECS)
    @pytest.mark.parametrize("distance", [0, 1, 2])
    def test_finds_planted_seed(self, spec, distance):
        engine = build_engine(spec)
        positions = sorted(
            int(p) for p in RNG.choice(256, size=distance, replace=False)
        )
        client_seed = flip_bits(BASE_SEED, positions)
        target = engine_target(engine, client_seed)
        result = engine.search(BASE_SEED, target, 2)
        assert result.found is True
        assert result.distance == distance
        assert result.seed == client_seed
        assert result.timed_out is False
        assert result.seeds_hashed >= 1
        assert bool(result) is True

    @pytest.mark.parametrize("spec", ALL_ENGINE_SPECS)
    def test_zero_budget_times_out_uniformly(self, spec):
        engine = build_engine(spec)
        absent_target = engine_target(engine, RNG.bytes(32))
        result = engine.search(BASE_SEED, absent_target, 2, time_budget=0)
        assert result.found is False
        assert result.timed_out is True
        assert result.seed is None and result.distance is None
        assert bool(result) is False

    @pytest.mark.parametrize("spec", ALL_ENGINE_SPECS)
    def test_results_are_tagged_and_shelled(self, spec):
        engine = build_engine(spec)
        client_seed = flip_bits(BASE_SEED, [5])
        result = engine.search(
            BASE_SEED, engine_target(engine, client_seed), 1
        )
        assert result.engine is not None and result.engine != ""
        distances = [shell.distance for shell in result.shells]
        assert 1 in distances
        assert sum(s.seeds_hashed for s in result.shells) == result.seeds_hashed


class TestUnifiedClusterResult:
    def test_cluster_extension_and_legacy_properties(self):
        engine = build_engine("cluster:2,hash=sha1,bs=4096")
        client_seed = flip_bits(BASE_SEED, [3, 77])
        result = engine.search(
            BASE_SEED, engine_target(engine, client_seed), 2
        )
        assert isinstance(result, SearchResult)
        assert result.cluster is not None
        assert result.finder_rank in (0, 1)
        assert len(result.per_rank_seconds) == 2
        assert len(result.per_rank_hashed) == 2
        assert result.seeds_hashed_total == result.seeds_hashed
        assert result.wall_seconds == result.elapsed_seconds
        assert result.dead_ranks == ()
        assert result.recovery_seconds == 0.0
        assert result.simulation_seconds > 0.0

    def test_legacy_alias_is_the_same_type(self):
        from repro.runtime.cluster import ClusterSearchResult

        assert ClusterSearchResult is SearchResult

    def test_single_process_result_has_no_cluster_stats(self):
        engine = build_engine("batch:sha1,bs=4096")
        result = engine.search(
            BASE_SEED, engine_target(engine, BASE_SEED), 0
        )
        assert result.cluster is None
        assert result.finder_rank is None
        assert result.per_rank_seconds == ()


class _NoFaults:
    def next(self):
        return None


class TestWrapperGeometry:
    def test_flaky_engine_forwards_geometry(self):
        from repro.devices.flaky import FlakyEngine

        inner = build_engine("batch:sha1,bs=1234")
        flaky = FlakyEngine(inner, _NoFaults(), name="acc")
        assert flaky.batch_size == 1234
        assert flaky.hash_name == "sha1"
        assert flaky.unwrap() is inner
        assert "flaky[acc]" in flaky.describe()
        assert "batch:sha1,bs=1234" in flaky.describe()

    def test_nested_wrappers_see_innermost_geometry(self):
        inner = build_engine("batch:sha1,bs=777")
        stack = RetryingEngine(BreakerGuardedEngine(inner))
        assert stack.batch_size == 777
        assert stack.hash_name == "sha1"
        assert stack.unwrap() is inner
        assert "retry" in stack.describe()
        assert "breaker" in stack.describe()

    def test_default_batch_size_fallback(self):
        class _Bare:
            def search(self, *a, **k):  # pragma: no cover
                raise AssertionError

        assert EngineWrapper(_Bare()).batch_size == DEFAULT_BATCH_SIZE

    def test_default_search_delegates(self):
        inner = build_engine("batch:sha1,bs=4096")
        wrapped = EngineWrapper(inner)
        client_seed = flip_bits(BASE_SEED, [9])
        result = wrapped.search(
            BASE_SEED, engine_target(wrapped, client_seed), 1
        )
        assert result.found and result.seed == client_seed

    def test_throughput_probe_delegates(self):
        wrapped = EngineWrapper(build_engine("batch:sha1,bs=4096"))
        assert wrapped.throughput_probe(2000) > 0

    def test_describe_engine_falls_back_to_type_name(self):
        class _Anon:
            pass

        assert describe_engine(_Anon()) == "_Anon"

    def test_failover_geometry_follows_the_breaker(self):
        from repro.reliability.failover import FailoverSearchService

        now = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=1, recovery_seconds=1000.0, clock=lambda: now[0]
        )
        service = FailoverSearchService(
            build_engine("batch:sha1,bs=1111"),
            build_engine("batch:sha1,bs=2222"),
            breaker,
        )
        assert service.batch_size == 1111
        breaker.record_failure()  # trips open at threshold 1
        assert service.batch_size == 2222
        assert "failover" in service.describe()

    def test_nonce_binding_engine_is_a_wrapper(self):
        from repro.net.session import _NonceBindingEngine

        inner = build_engine("batch:sha3-256,bs=512")
        bound = _NonceBindingEngine(inner, "sha3-256", b"\x01" * 16)
        assert isinstance(bound, EngineWrapper)
        assert bound.batch_size == 512
        client_seed = flip_bits(BASE_SEED, [11])
        from repro.hashes.registry import get_hash

        target = get_hash("sha3-256").scalar(client_seed + b"\x01" * 16)
        result = bound.search(BASE_SEED, target, 1)
        assert result.found and result.seed == client_seed
        assert result.engine is not None and "nonce-bound" in result.engine


class _Exploding:
    """Engine stub that fails a scripted number of times, then succeeds."""

    def __init__(self, failures: int):
        self.failures = failures
        self.calls = 0

    def search(self, base_seed, target_digest, max_distance, time_budget=None):
        self.calls += 1
        if self.calls <= self.failures:
            raise RuntimeError("backend died")
        return SearchResult(True, base_seed, 0, 1, 0.0)


class TestReliabilityGuards:
    def test_breaker_guard_trips_and_refuses(self):
        breaker = CircuitBreaker(failure_threshold=2, recovery_seconds=1000.0)
        guarded = BreakerGuardedEngine(_Exploding(failures=99), breaker)
        for _ in range(2):
            with pytest.raises(RuntimeError, match="backend died"):
                guarded.search(BASE_SEED, b"", 1)
        with pytest.raises(CircuitOpenError):
            guarded.search(BASE_SEED, b"", 1)
        assert breaker.state == "open"

    def test_retrying_engine_recovers_and_charges_backoff(self):
        waits: list[float] = []
        engine = RetryingEngine(
            _Exploding(failures=2),
            policy=RetryPolicy(max_attempts=4, jitter_fraction=0.0),
            waiter=waits.append,
        )
        result = engine.search(BASE_SEED, b"", 1)
        assert result.found
        assert engine.retries_used == 2
        assert waits == [0.25, 0.5]
        assert engine.backoff_charged_seconds == pytest.approx(0.75)

    def test_retrying_engine_exhausts(self):
        engine = RetryingEngine(
            _Exploding(failures=99),
            policy=RetryPolicy(max_attempts=3, jitter_fraction=0.0),
        )
        with pytest.raises(RetriesExhausted):
            engine.search(BASE_SEED, b"", 1)
        assert engine.attempts_made == 3


class TestHooks:
    def test_telemetry_matches_result(self):
        hooks = TelemetryHooks()
        engine = build_engine("batch:sha1,bs=4096", hooks=hooks)
        client_seed = flip_bits(BASE_SEED, [4, 200])
        result = engine.search(
            BASE_SEED, engine_target(engine, client_seed), 2
        )
        snap = hooks.snapshot()
        assert snap["seeds_hashed"] == result.seeds_hashed
        assert snap["shells_completed"] == len(result.shells)
        assert snap["seeds_by_distance"][0] == 1
        assert sum(snap["seeds_by_distance"].values()) == result.seeds_hashed

    def test_hooks_fire_across_engines(self):
        for spec in ("parallel:sha1,w=2,bs=4096", "cluster:2,hash=sha1,bs=4096"):
            hooks = TelemetryHooks()
            engine = build_engine(spec, hooks=hooks)
            engine.search(BASE_SEED, engine_target(engine, BASE_SEED), 1)
            assert hooks.snapshot()["shells_completed"] > 0

    def test_null_hooks_are_inert(self):
        hooks = NullHooks()
        hooks.on_batch(1, 256)
        hooks.on_shell_complete(ShellStats(1, 256, 0.1))


class TestMergeShells:
    def test_counts_add_seconds_take_max(self):
        merged = merge_shells([
            (ShellStats(1, 10, 0.5),),
            (ShellStats(1, 20, 0.7), ShellStats(2, 5, 0.1)),
        ])
        assert [s.distance for s in merged] == [1, 2]
        assert merged[0].seeds_hashed == 30
        assert merged[0].seconds == 0.7
        assert merged[1].seeds_hashed == 5

    def test_empty_merge(self):
        assert merge_shells([]) == ()


class TestSummarizeSearchResults:
    def test_aggregates_unified_results(self):
        from repro.analysis.metrics import summarize_search_results

        engine = build_engine("batch:sha1,bs=4096")
        results = []
        for distance in (0, 1):
            planted = flip_bits(BASE_SEED, list(range(distance)))
            results.append(
                engine.search(BASE_SEED, engine_target(engine, planted), 1)
            )
        summary = summarize_search_results(results)
        assert summary["searches"] == 2
        assert summary["found"] == 2
        assert summary["found_distances"] == {0: 1, 1: 1}
        assert summary["seeds_hashed"] == sum(r.seeds_hashed for r in results)
        assert summary["seeds_by_distance"][0] >= 2
        assert set(summary["engines"]) == {"batch:sha1,bs=4096"}
