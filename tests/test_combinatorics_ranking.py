"""Tests for rank/unrank utilities including the vectorized batch path."""

from itertools import combinations

import numpy as np
import pytest

from repro.combinatorics.binomial import binomial
from repro.combinatorics.ranking import (
    combinations_to_masks,
    rank_lexicographic,
    unrank_lexicographic_batch,
    unrank_lexicographic_exact,
)


class TestRank:
    def test_rank_inverts_unrank(self):
        for rank in range(binomial(9, 4)):
            combo = unrank_lexicographic_exact(9, 4, rank)
            assert rank_lexicographic(9, combo) == rank

    def test_rank_rejects_unsorted(self):
        with pytest.raises(ValueError):
            rank_lexicographic(9, (3, 1))

    def test_rank_rejects_out_of_range_elements(self):
        with pytest.raises(ValueError):
            rank_lexicographic(9, (0, 9))

    def test_rank_empty_combination(self):
        assert rank_lexicographic(9, ()) == 0


class TestBatchUnrank:
    @pytest.mark.parametrize("n,k", [(8, 3), (10, 5), (12, 1)])
    def test_matches_itertools(self, n, k):
        expected = list(combinations(range(n), k))
        got = unrank_lexicographic_batch(n, k, np.arange(len(expected)))
        assert [tuple(row) for row in got] == expected

    def test_large_space_spot_checks(self):
        ranks = np.array([0, 1, 255, 10**6, binomial(256, 5) - 1], dtype=np.uint64)
        got = unrank_lexicographic_batch(256, 5, ranks)
        for row, rank in zip(got, ranks):
            assert tuple(row) == unrank_lexicographic_exact(256, 5, int(rank))

    def test_rows_strictly_increasing(self):
        got = unrank_lexicographic_batch(256, 5, np.arange(1000, 2000))
        assert (np.diff(got, axis=1) > 0).all()

    def test_out_of_range_rejected(self):
        with pytest.raises(IndexError):
            unrank_lexicographic_batch(8, 3, np.array([binomial(8, 3)]))

    def test_k_zero(self):
        got = unrank_lexicographic_batch(8, 0, np.array([0, 0]))
        assert got.shape == (2, 0)

    def test_overflow_guard(self):
        with pytest.raises(OverflowError):
            unrank_lexicographic_batch(256, 100, np.array([0]))

    def test_empty_ranks(self):
        got = unrank_lexicographic_batch(8, 3, np.array([], dtype=np.uint64))
        assert got.shape == (0, 3)


class TestMasks:
    def test_masks_have_correct_popcount(self):
        positions = unrank_lexicographic_batch(256, 5, np.arange(100))
        masks = combinations_to_masks(positions)
        from repro._bitutils import popcount64

        assert (popcount64(masks).sum(axis=1) == 5).all()

    def test_mask_bit_placement(self):
        masks = combinations_to_masks(np.array([[0, 64, 128, 192]]))
        assert (masks[0] == np.ones(4, dtype=np.uint64)).all()
