"""Core complexity math (Eqs. 1-3) and salting schemes."""

import pytest

from repro.core.complexity import (
    opponent_search_space,
    server_search_space,
    table1_rows,
    tractable_distance,
)
from repro.core.salting import HashChainSalt, RotateSalt, XorSalt


class TestComplexity:
    def test_opponent_space_is_2_256(self):
        assert opponent_search_space() == 1 << 256

    def test_server_vs_opponent_asymmetry(self):
        # The tractability argument: even d=5 is ~10^67 times smaller.
        ratio = opponent_search_space() / server_search_space(5)
        assert ratio > 1e60

    def test_table1_rows_structure(self):
        rows = table1_rows(5)
        assert [r.d for r in rows] == [1, 2, 3, 4, 5]
        assert rows[0].exhaustive == 257
        assert rows[0].average == 129

    def test_average_flag(self):
        assert server_search_space(3, average=True) < server_search_space(3)

    def test_tractable_distance_gpu_sha3(self):
        # Paper anchor: the A100 searches d=5 (9e9 seeds) in 4.67 s,
        # comfortably under T=20 s, but d=6 (3.7e11) would not fit.
        throughput = 8987138113 / 4.67
        assert tractable_distance(throughput, 20.0) == 5

    def test_tractable_distance_cpu_sha3(self):
        # Paper: SALTED-CPU at 60.68 s does NOT meet T=20 for d=5.
        throughput = 8987138113 / 60.68
        assert tractable_distance(throughput, 20.0) == 4

    def test_tractable_distance_validation(self):
        with pytest.raises(ValueError):
            tractable_distance(0, 20.0)


class TestSalting:
    @pytest.fixture(params=[RotateSalt(96), XorSalt(b"\xa5" * 32), HashChainSalt()],
                    ids=["rotate", "xor", "hash-chain"])
    def scheme(self, request):
        return request.param

    def test_deterministic(self, scheme, rng):
        seed = rng.bytes(32)
        assert scheme(seed) == scheme(seed)

    def test_changes_seed(self, scheme, rng):
        seed = rng.bytes(32)
        assert scheme(seed) != seed

    def test_output_is_seed_sized(self, scheme, rng):
        assert len(scheme(rng.bytes(32))) == 32

    def test_input_length_validation(self, scheme):
        with pytest.raises(ValueError):
            scheme(b"\x00" * 16)

    def test_rotate_is_rotation(self):
        from repro._bitutils import rotate_left_int, seed_to_int

        seed = bytes(range(32))
        salted = RotateSalt(8).apply(seed)
        assert seed_to_int(salted) == rotate_left_int(seed_to_int(seed), 8)

    def test_rotate_rejects_identity(self):
        with pytest.raises(ValueError):
            RotateSalt(0)
        with pytest.raises(ValueError):
            RotateSalt(256)

    def test_xor_rejects_zero_pad(self):
        with pytest.raises(ValueError):
            XorSalt(bytes(32))

    def test_xor_pad_length(self):
        with pytest.raises(ValueError):
            XorSalt(b"\x01" * 31)

    def test_hash_chain_context_separation(self, rng):
        seed = rng.bytes(32)
        assert HashChainSalt(b"ctx-a").apply(seed) != HashChainSalt(b"ctx-b").apply(seed)

    def test_hash_chain_requires_context(self):
        with pytest.raises(ValueError):
            HashChainSalt(b"")

    def test_digest_key_decoupling(self, scheme, rng):
        """The protocol property: digest and public key share no seed."""
        from repro.hashes.sha3 import sha3_256
        from repro.keygen.interface import get_keygen

        seed = rng.bytes(32)
        digest_input = seed              # what the search matches on
        keygen_input = scheme(seed)      # what the key derives from
        assert digest_input != keygen_input
        # and the key from the raw seed differs from the deployed key
        keygen = get_keygen("aes-128")
        assert keygen.public_key(seed) != keygen.public_key(keygen_input)
