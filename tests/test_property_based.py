"""Property-based tests (hypothesis) on the core data structures.

These check invariants over generated inputs: conversion round trips,
hash equivalences, combinatorial identities, iterator contracts, and the
search's find-anything-planted property.
"""

import hashlib

import numpy as np
from hypothesis import given, settings, strategies as st

from repro._bitutils import (
    SEED_BITS,
    flip_bits,
    hamming_distance,
    int_to_seed,
    positions_to_mask_int,
    seed_to_int,
    seed_to_words,
    seeds_to_words,
    words_to_seed,
    words_to_seeds,
)
from repro.combinatorics.binomial import binomial
from repro.combinatorics.algorithm382 import minimal_change_sequence
from repro.combinatorics.ranking import (
    rank_lexicographic,
    unrank_lexicographic_batch,
    unrank_lexicographic_exact,
)
from repro.hashes.sha1 import sha1
from repro.hashes.sha256 import sha256
from repro.hashes.sha3 import sha3_256

seeds_strategy = st.binary(min_size=32, max_size=32)
messages_strategy = st.binary(min_size=0, max_size=300)


class TestBitutilProperties:
    @given(seeds_strategy)
    def test_int_roundtrip(self, seed):
        assert int_to_seed(seed_to_int(seed)) == seed

    @given(seeds_strategy)
    def test_words_roundtrip(self, seed):
        assert words_to_seed(seed_to_words(seed)) == seed

    @given(st.lists(seeds_strategy, min_size=1, max_size=20))
    def test_batch_words_roundtrip(self, seeds):
        assert words_to_seeds(seeds_to_words(seeds)) == seeds

    @given(seeds_strategy, st.sets(st.integers(0, SEED_BITS - 1), min_size=0, max_size=10))
    def test_flip_bits_sets_exact_distance(self, seed, positions):
        flipped = flip_bits(seed, positions)
        assert hamming_distance(seed, flipped) == len(positions)

    @given(st.sets(st.integers(0, SEED_BITS - 1), min_size=1, max_size=8))
    def test_mask_popcount(self, positions):
        assert positions_to_mask_int(positions).bit_count() == len(positions)

    @given(seeds_strategy, seeds_strategy)
    def test_hamming_symmetry(self, a, b):
        assert hamming_distance(a, b) == hamming_distance(b, a)

    @given(seeds_strategy, seeds_strategy, seeds_strategy)
    def test_hamming_triangle_inequality(self, a, b, c):
        assert hamming_distance(a, c) <= hamming_distance(a, b) + hamming_distance(b, c)


class TestHashProperties:
    @given(messages_strategy)
    @settings(max_examples=40)
    def test_sha1_matches_hashlib(self, data):
        assert sha1(data) == hashlib.sha1(data).digest()

    @given(messages_strategy)
    @settings(max_examples=40)
    def test_sha256_matches_hashlib(self, data):
        assert sha256(data) == hashlib.sha256(data).digest()

    @given(messages_strategy)
    @settings(max_examples=40)
    def test_sha3_matches_hashlib(self, data):
        assert sha3_256(data) == hashlib.sha3_256(data).digest()

    @given(st.lists(seeds_strategy, min_size=1, max_size=12))
    @settings(max_examples=20)
    def test_batch_kernels_match_scalar(self, seeds):
        from repro.hashes.registry import get_hash

        words = seeds_to_words(seeds)
        for name in ("sha1", "sha256", "sha3-256"):
            algo = get_hash(name)
            batch = algo.hash_seeds_batch(words)
            for i, seed in enumerate(seeds):
                assert (batch[i] == algo.digest_to_words(algo.scalar(seed))).all()


class TestCombinatoricProperties:
    @given(st.integers(1, 12), st.data())
    @settings(max_examples=40)
    def test_unrank_rank_inverse(self, n, data):
        k = data.draw(st.integers(1, n))
        rank = data.draw(st.integers(0, binomial(n, k) - 1))
        combo = unrank_lexicographic_exact(n, k, rank)
        assert rank_lexicographic(n, combo) == rank

    @given(st.integers(1, 10), st.data())
    @settings(max_examples=25)
    def test_batch_unrank_matches_exact(self, n, data):
        k = data.draw(st.integers(1, n))
        total = binomial(n, k)
        ranks = data.draw(
            st.lists(st.integers(0, total - 1), min_size=1, max_size=20)
        )
        batch = unrank_lexicographic_batch(n, k, np.array(ranks, dtype=np.uint64))
        for row, rank in zip(batch, ranks):
            assert tuple(row) == unrank_lexicographic_exact(n, k, rank)

    @given(st.integers(1, 9), st.data())
    @settings(max_examples=25)
    def test_minimal_change_is_gray_code(self, n, data):
        k = data.draw(st.integers(1, n))
        seq = list(minimal_change_sequence(n, k))
        assert len(seq) == binomial(n, k)
        assert len(set(seq)) == len(seq)
        for a, b in zip(seq, seq[1:]):
            assert len(set(a) ^ set(b)) == 2


class TestSearchProperties:
    @given(
        seeds_strategy,
        st.sets(st.integers(0, SEED_BITS - 1), min_size=0, max_size=2),
    )
    @settings(max_examples=15, deadline=None)
    def test_search_finds_any_planted_seed_within_d2(self, base, positions):
        """The headline invariant: every seed within distance 2 is found."""
        from repro.runtime.executor import BatchSearchExecutor

        client_seed = flip_bits(base, positions)
        executor = BatchSearchExecutor("sha1", batch_size=16384)
        result = executor.search(base, sha1(client_seed), 2)
        assert result.found
        assert result.seed == client_seed
        assert result.distance == len(positions)

    @given(seeds_strategy, st.integers(0, SEED_BITS - 1))
    @settings(max_examples=10, deadline=None)
    def test_salting_never_silently_identity(self, seed, shift_source):
        """The protocol must never key-generate from the searched seed:
        a salt either transforms the seed or refuses (rotation degenerates
        on rotation-symmetric seeds, e.g. all-zeros — hypothesis found
        this edge, and RotateSalt must raise there rather than pass the
        seed through)."""
        import pytest

        from repro.core.salting import HashChainSalt, RotateSalt

        shift = (shift_source % 255) + 1
        rotate = RotateSalt(shift)
        try:
            assert rotate(seed) != seed
        except ValueError:
            # Refusal is acceptable; silent identity is not.
            assert rotate.apply(seed) == seed
        assert HashChainSalt()(seed) != seed
