"""Trial harness statistics and the CLI entry points."""

import numpy as np
import pytest

from repro.analysis.trials import run_device_trials, run_search_trials
from repro.cli import main as cli_main
from repro.devices import GPUModel
from repro.hashes.sha1 import sha1
from repro.runtime.executor import BatchSearchExecutor


class TestSearchTrials:
    def test_statistics_converge_to_equation3(self, rng):
        executor = BatchSearchExecutor("sha1", batch_size=129)
        stats = run_search_trials(executor, sha1, distance=1, trials=60, rng=rng)
        # a(1) = 129; with 60 trials the mean should land within ~35%.
        assert 0.6 < stats.mean_vs_analytic < 1.5
        assert stats.min_seeds >= 1
        assert stats.max_seeds <= stats.exhaustive + 129  # batch quantization

    def test_summary_string(self, rng):
        executor = BatchSearchExecutor("sha1", batch_size=64)
        stats = run_search_trials(executor, sha1, distance=1, trials=5, rng=rng)
        assert "trials at d=1" in stats.summary()

    def test_trials_validation(self, rng):
        executor = BatchSearchExecutor("sha1")
        with pytest.raises(ValueError):
            run_search_trials(executor, sha1, 1, 0, rng=rng)


class TestDeviceTrials:
    def test_paper_scale_trials(self, rng):
        gpu = GPUModel()
        stats = run_device_trials(gpu, "sha3-256", distance=5, trials=1200, rng=rng)
        # 1,200 trials (the paper's count): mean within 2% of a(5) and the
        # mean modeled time near the Table 5 average-case anchor's work
        # portion (2.38 s) — without exit overhead, which the model adds
        # to full searches only.
        assert abs(stats.mean_vs_analytic - 1.0) < 0.02
        assert 2.2 < stats.mean_seconds < 2.6

    def test_spread_covers_the_shell(self, rng):
        gpu = GPUModel()
        stats = run_device_trials(gpu, "sha1", distance=5, trials=500, rng=rng)
        assert stats.min_seeds < stats.analytic_average < stats.max_seeds

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            run_device_trials(GPUModel(), "sha1", 5, 0, rng=rng)


class TestCLI:
    def test_demo(self, capsys):
        assert cli_main(["demo", "--distance", "1", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "authenticated: True" in out

    def test_complexity(self, capsys):
        assert cli_main(["complexity", "--throughput", "1.9e9"]) == 0
        out = capsys.readouterr().out
        assert "8,987,138,113" in out and "d_max = 5" in out

    def test_tables(self, capsys):
        assert cli_main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table 5 (reproduced)" in out and "Fig 4" in out

    def test_attack_short_budget(self, capsys):
        assert cli_main(["attack", "--budget", "0.05", "--hash", "sha1"]) == 0
        out = capsys.readouterr().out
        assert "avalanche" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            cli_main(["frobnicate"])
