"""Scalar hash implementations validated against hashlib (FIPS vectors)."""

import hashlib

import pytest

from repro.hashes.sha1 import SHA1, sha1
from repro.hashes.sha256 import SHA256, sha256
from repro.hashes.sha3 import (
    keccak_f1600,
    keccak_sponge,
    sha3_224,
    sha3_256,
    sha3_384,
    sha3_512,
)

REFERENCES = [
    (sha1, hashlib.sha1),
    (sha256, hashlib.sha256),
    (sha3_224, hashlib.sha3_224),
    (sha3_256, hashlib.sha3_256),
    (sha3_384, hashlib.sha3_384),
    (sha3_512, hashlib.sha3_512),
]


@pytest.fixture(params=REFERENCES, ids=lambda p: p[1]().name)
def pair(request):
    return request.param


class TestAgainstHashlib:
    def test_empty_message(self, pair):
        ours, ref = pair
        assert ours(b"") == ref(b"").digest()

    def test_abc(self, pair):
        ours, ref = pair
        assert ours(b"abc") == ref(b"abc").digest()

    def test_seed_sized_message(self, pair, rng):
        ours, ref = pair
        data = rng.bytes(32)
        assert ours(data) == ref(data).digest()

    @pytest.mark.parametrize("length", [1, 55, 56, 63, 64, 65, 127, 128, 135, 136, 137, 200, 257])
    def test_padding_boundaries(self, pair, rng, length):
        # Lengths straddling every block/pad boundary of both families.
        ours, ref = pair
        data = rng.bytes(length)
        assert ours(data) == ref(data).digest()


class TestIncrementalInterface:
    @pytest.mark.parametrize("cls,ref", [(SHA1, hashlib.sha1), (SHA256, hashlib.sha256)])
    def test_update_chunks_match_oneshot(self, cls, ref, rng):
        data = rng.bytes(300)
        h = cls()
        for offset in range(0, 300, 7):
            h.update(data[offset : offset + 7])
        assert h.digest() == ref(data).digest()

    @pytest.mark.parametrize("cls", [SHA1, SHA256])
    def test_digest_does_not_finalize(self, cls):
        h = cls(b"hello")
        first = h.digest()
        assert h.digest() == first  # repeatable
        h.update(b" world")
        assert h.digest() != first

    @pytest.mark.parametrize("cls,ref", [(SHA1, hashlib.sha1), (SHA256, hashlib.sha256)])
    def test_copy_forks_state(self, cls, ref):
        h = cls(b"pre")
        fork = h.copy()
        fork.update(b"-a")
        h.update(b"-b")
        assert fork.digest() == ref(b"pre-a").digest()
        assert h.digest() == ref(b"pre-b").digest()

    @pytest.mark.parametrize("cls", [SHA1, SHA256])
    def test_hexdigest(self, cls):
        assert cls(b"x").hexdigest() == cls(b"x").digest().hex()


class TestKeccakInternals:
    def test_permutation_requires_25_lanes(self):
        with pytest.raises(ValueError):
            keccak_f1600([0] * 24)

    def test_permutation_changes_zero_state(self):
        out = keccak_f1600([0] * 25)
        assert any(lane != 0 for lane in out)
        # Known first lane of Keccak-f[1600] applied to the zero state.
        assert out[0] == 0xF1258F7940E1DDE7

    def test_permutation_is_deterministic(self):
        state = list(range(25))
        assert keccak_f1600(state) == keccak_f1600(state)

    def test_permutation_does_not_mutate_input(self):
        state = list(range(25))
        keccak_f1600(state)
        assert state == list(range(25))

    def test_sponge_rate_validation(self):
        with pytest.raises(ValueError):
            keccak_sponge(b"", rate_bytes=0, digest_size=32)
        with pytest.raises(ValueError):
            keccak_sponge(b"", rate_bytes=200, digest_size=32)

    def test_shake_style_domain(self):
        # SHAKE128: rate 168, domain 0x1F. Cross-check against hashlib.
        out = keccak_sponge(b"abc", rate_bytes=168, digest_size=32, domain=0x1F)
        assert out == hashlib.shake_128(b"abc").digest(32)

    def test_multi_block_squeeze(self):
        # Squeeze more than one rate's worth of output (SHAKE-256, 200 B).
        out = keccak_sponge(b"seed", rate_bytes=136, digest_size=200, domain=0x1F)
        assert out == hashlib.shake_256(b"seed").digest(200)
