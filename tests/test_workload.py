"""Workload generator and server-capacity analysis."""

import numpy as np
import pytest

from repro.analysis.workload import (
    AuthRequest,
    ServerCapacityModel,
    WorkloadGenerator,
    service_time_distribution,
    simulate_queue,
)
from repro.devices import GPUModel


class TestWorkloadGenerator:
    def test_arrivals_are_increasing(self, rng):
        gen = WorkloadGenerator(10.0, rng=rng)
        requests = gen.generate(100)
        times = [r.arrival_seconds for r in requests]
        assert times == sorted(times)

    def test_rate_roughly_matches(self, rng):
        gen = WorkloadGenerator(50.0, rng=rng)
        requests = gen.generate(2000)
        span = requests[-1].arrival_seconds - requests[0].arrival_seconds
        assert 2000 / span == pytest.approx(50.0, rel=0.2)

    def test_distance_mix_respected(self, rng):
        gen = WorkloadGenerator(1.0, distance_weights={1: 0.5, 5: 0.5}, rng=rng)
        requests = gen.generate(400)
        distances = {r.distance for r in requests}
        assert distances <= {1, 5}
        ones = sum(1 for r in requests if r.distance == 1)
        assert 120 < ones < 280

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            WorkloadGenerator(0.0)
        with pytest.raises(ValueError):
            WorkloadGenerator(1.0, distance_weights={1: 0.0})


class TestServiceTimes:
    def test_monotone_in_distance(self, rng):
        gpu = GPUModel()
        requests = [AuthRequest(0.0, d, 0.5) for d in (1, 2, 3, 4, 5)]
        times = service_time_distribution(gpu, "sha3-256", requests)
        assert (np.diff(times) > 0).all()

    def test_shell_fraction_scales_cost(self):
        gpu = GPUModel()
        early = service_time_distribution(gpu, "sha3-256", [AuthRequest(0, 5, 0.01)])
        late = service_time_distribution(gpu, "sha3-256", [AuthRequest(0, 5, 0.99)])
        assert early[0] < late[0]

    def test_distance_zero_is_epsilon(self):
        gpu = GPUModel()
        times = service_time_distribution(gpu, "sha1", [AuthRequest(0, 0, 0.0)])
        assert times[0] < 1e-3


class TestCapacityModel:
    def test_utilization_and_stability(self):
        model = ServerCapacityModel(np.full(100, 2.0))
        ok = model.estimate(0.25)  # rho = 0.5
        assert ok.stable and ok.utilization == pytest.approx(0.5)
        saturated = model.estimate(0.6)  # rho = 1.2
        assert not saturated.stable and saturated.mean_wait_seconds == float("inf")

    def test_deterministic_service_matches_md1(self):
        # M/D/1: W = rho * s / (2 (1 - rho)).
        model = ServerCapacityModel(np.full(1000, 1.0))
        estimate = model.estimate(0.5)
        assert estimate.mean_wait_seconds == pytest.approx(0.5, rel=0.01)

    def test_variance_increases_wait(self, rng):
        flat = ServerCapacityModel(np.full(1000, 1.0))
        jittery_times = rng.exponential(1.0, size=4000)
        jittery = ServerCapacityModel(jittery_times)
        assert (
            jittery.estimate(0.5).mean_wait_seconds
            > flat.estimate(0.5).mean_wait_seconds
        )

    def test_max_stable_rate(self):
        model = ServerCapacityModel(np.full(10, 2.0))
        assert model.max_stable_rate(0.8) == pytest.approx(0.4)
        with pytest.raises(ValueError):
            model.max_stable_rate(1.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            ServerCapacityModel(np.array([]))
        with pytest.raises(ValueError):
            ServerCapacityModel(np.array([0.0]))
        with pytest.raises(ValueError):
            ServerCapacityModel(np.array([1.0])).estimate(0.0)


class TestQueueSimulation:
    def test_simulation_agrees_with_pk_formula(self, rng):
        gen = WorkloadGenerator(0.4, distance_weights={1: 1.0}, rng=rng)
        requests = gen.generate(3000)
        service = rng.exponential(1.0, size=3000)
        sim = simulate_queue(requests, service)
        model = ServerCapacityModel(service)
        analytic = model.estimate(0.4)
        # M/M/1 at rho=0.4: W = rho/(mu - lambda)... mean wait ~ 0.67 s.
        assert sim["mean_wait_seconds"] == pytest.approx(
            analytic.mean_wait_seconds, rel=0.35
        )

    def test_busy_fraction_tracks_utilization(self, rng):
        gen = WorkloadGenerator(0.25, rng=rng)
        requests = gen.generate(2000)
        service = np.full(2000, 2.0)
        sim = simulate_queue(requests, service)
        assert sim["busy_fraction"] == pytest.approx(0.5, rel=0.15)

    def test_alignment_validation(self, rng):
        with pytest.raises(ValueError):
            simulate_queue([AuthRequest(0, 1, 0.5)], np.array([1.0, 2.0]))


class TestEndToEndCapacityStory:
    def test_gpu_serves_many_more_clients_than_cpu(self, rng):
        """The operational meaning of Table 5."""
        from repro.devices import CPUModel

        gen = WorkloadGenerator(1.0, rng=rng)
        requests = gen.generate(600)
        gpu_service = service_time_distribution(GPUModel(), "sha3-256", requests)
        cpu_service = service_time_distribution(CPUModel(), "sha3-256", requests)
        gpu_capacity = ServerCapacityModel(gpu_service).max_stable_rate()
        cpu_capacity = ServerCapacityModel(cpu_service).max_stable_rate()
        assert gpu_capacity > 5 * cpu_capacity
