"""Tenancy: identity, quotas, fair share, namespacing, end to end."""

import json
import zlib
from types import SimpleNamespace

import pytest

from repro._bitutils import flip_bits
from repro.core import (
    CertificateAuthority,
    RBCSearchService,
    RegistrationAuthority,
)
from repro.core.salting import HashChainSalt
from repro.directory.sharded import ShardedEnrollmentDirectory
from repro.hashes.registry import get_hash
from repro.keygen.interface import get_keygen
from repro.net.concurrent import ConcurrentCAServer
from repro.net.messages import DigestSubmission, HandshakeRequest
from repro.puf.image_db import EncryptedImageDatabase
from repro.puf.model import SRAMPuf
from repro.puf.ternary import enroll_with_masking
from repro.runtime.executor import BatchSearchExecutor
from repro.sched.engine import ScheduledSearchEngine
from repro.sched.errors import (
    SHED_SATURATED,
    SHED_TENANT_QUOTA,
    RequestShed,
)
from repro.sched.policy import SchedulingPolicy
from repro.tenancy import (
    DEFAULT_TENANT,
    TenantContext,
    TenantLedger,
    TenantQuota,
    TenantRegistry,
    TokenBucket,
    namespaced_key,
    split_key,
    tenant_of_key,
    validate_tenant_id,
)
from repro.tenancy.errors import TenantQuotaExceeded, UnknownTenant


class ManualClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def advance(self, seconds: float) -> None:
        self.now += seconds

    def __call__(self) -> float:
        return self.now


class TestTenantIdentity:
    def test_default_tenant_maps_to_bare_key(self):
        # Byte-for-byte the pre-tenancy key: legacy records stay found.
        assert namespaced_key(None, "alice") == "alice"
        assert namespaced_key("", "alice") == "alice"
        assert namespaced_key(DEFAULT_TENANT, "alice") == "alice"

    def test_named_tenant_prefixes_the_key(self):
        assert namespaced_key("gold", "alice") == "gold::alice"
        assert split_key("gold::alice") == ("gold", "alice")
        assert split_key("alice") == (DEFAULT_TENANT, "alice")
        assert tenant_of_key("gold::alice") == "gold"
        assert tenant_of_key("alice") == DEFAULT_TENANT

    def test_separator_forbidden_inside_client_ids(self):
        with pytest.raises(ValueError, match="may not contain"):
            namespaced_key("gold", "a::b")

    def test_tenant_id_charset_enforced(self):
        validate_tenant_id("fleet-7.eu_west")
        for bad in ("", "Gold", "a b", "-lead", "x" * 65, "a::b"):
            with pytest.raises(ValueError):
                validate_tenant_id(bad)
        with pytest.raises(ValueError):
            TenantContext("BAD")

    def test_quota_validation_and_bucket_capacity(self):
        assert TenantQuota().bucket_capacity is None
        assert TenantQuota(lookup_rate=8.0).bucket_capacity == 8.0
        assert TenantQuota(lookup_rate=0.25).bucket_capacity == 1.0
        assert TenantQuota(lookup_rate=2.0, burst=16.0).bucket_capacity == 16.0
        with pytest.raises(ValueError):
            TenantQuota(lookup_rate=0.0)
        with pytest.raises(ValueError):
            TenantQuota(burst=0.5)
        with pytest.raises(ValueError):
            TenantQuota(max_enrollments=-1)
        with pytest.raises(ValueError):
            TenantContext("gold", weight=0.0)


class TestTokenBucket:
    def test_burst_then_dry(self):
        clock = ManualClock()
        bucket = TokenBucket(rate=1.0, capacity=2.0, clock=clock)
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refills_at_rate_and_caps_at_capacity(self):
        clock = ManualClock()
        bucket = TokenBucket(rate=2.0, capacity=4.0, clock=clock)
        for _ in range(4):
            assert bucket.try_acquire()
        clock.advance(0.5)  # one token back
        assert bucket.available == pytest.approx(1.0)
        assert bucket.try_acquire()
        assert not bucket.try_acquire()
        clock.advance(1000.0)
        assert bucket.available == pytest.approx(4.0)  # capped

    def test_refused_acquire_does_not_debit(self):
        clock = ManualClock()
        bucket = TokenBucket(rate=1.0, capacity=1.0, clock=clock)
        assert bucket.try_acquire()
        assert not bucket.try_acquire(5.0)
        clock.advance(1.0)
        assert bucket.try_acquire()

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, capacity=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, capacity=0.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, capacity=1.0).try_acquire(0.0)


class TestTenantRegistry:
    def test_default_tenant_always_registered(self):
        registry = TenantRegistry()
        assert DEFAULT_TENANT in registry
        assert registry.resolve(None).tenant_id == DEFAULT_TENANT
        assert registry.resolve("").tenant_id == DEFAULT_TENANT

    def test_unknown_tenant_falls_back_unless_strict(self):
        registry = TenantRegistry()
        assert registry.resolve("ghost").tenant_id == DEFAULT_TENANT
        strict = TenantRegistry(strict=True)
        with pytest.raises(UnknownTenant):
            strict.resolve("ghost")

    def test_try_admit_charges_the_bucket(self):
        clock = ManualClock()
        registry = TenantRegistry(
            tenants=(
                TenantContext(
                    "gold", quota=TenantQuota(lookup_rate=1.0, burst=2.0)
                ),
            ),
            clock=clock,
        )
        assert registry.try_admit("gold")
        assert registry.try_admit("gold")
        assert not registry.try_admit("gold")
        clock.advance(1.0)
        assert registry.try_admit("gold")
        # No quota, no limit: the default tenant always admits.
        for _ in range(100):
            assert registry.try_admit(None)

    def test_register_replace_resets_the_bucket(self):
        clock = ManualClock()
        context = TenantContext(
            "gold", quota=TenantQuota(lookup_rate=1.0, burst=1.0)
        )
        registry = TenantRegistry(tenants=(context,), clock=clock)
        assert registry.try_admit("gold")
        assert not registry.try_admit("gold")
        registry.register(context)  # fresh bucket
        assert registry.try_admit("gold")

    def test_weights_caps_and_snapshot(self):
        registry = TenantRegistry(
            tenants=(
                TenantContext(
                    "gold",
                    weight=3.0,
                    quota=TenantQuota(lookup_rate=5.0, max_enrollments=7),
                ),
            )
        )
        assert registry.weight_of("gold") == 3.0
        assert registry.weight_of("ghost") == 1.0
        assert registry.enrollment_cap("gold") == 7
        assert registry.enrollment_cap(None) is None
        snapshot = registry.snapshot()
        assert snapshot["gold"]["lookup_rate"] == 5.0
        assert snapshot["gold"]["tokens_available"] == pytest.approx(5.0)
        assert "tokens_available" not in snapshot[DEFAULT_TENANT]
        contexts = registry.contexts()
        assert contexts[0].tenant_id == DEFAULT_TENANT


class TestTenantLedger:
    def test_attribution_and_percentiles(self):
        ledger = TenantLedger()
        for latency in (0.010, 0.020, 0.030):
            ledger.record(
                "gold", submitted=1, completed=1, authenticated=1,
                search_seconds=latency, latency_seconds=latency,
            )
        ledger.record("brass", shed=1, quota_hits=1)
        assert ledger.tenant_ids() == ("brass", "gold")
        snapshot = ledger.snapshot()
        assert snapshot["gold"]["completed"] == 3
        assert snapshot["gold"]["p50_seconds"] == pytest.approx(0.020)
        assert snapshot["brass"]["shed"] == 1
        assert snapshot["brass"]["quota_hits"] == 1
        assert "p50_seconds" not in snapshot["brass"]


def _tenant_req(seq, tenant_id, lane="shallow", deadline=None,
                remaining=1000, aged=False):
    return SimpleNamespace(
        seq=seq, lane=lane, deadline=deadline, remaining_work=remaining,
        tenant_id=tenant_id, aged=aged,
    )


class TestPolicyTenancy:
    def _policy(self, **weights):
        registry = TenantRegistry(
            tenants=tuple(
                TenantContext(tenant_id, weight=weight)
                for tenant_id, weight in weights.items()
            )
        )
        return SchedulingPolicy(tenants=registry)

    def test_admission_charges_the_bucket_last(self):
        clock = ManualClock()
        registry = TenantRegistry(
            tenants=(
                TenantContext(
                    "gold", quota=TenantQuota(lookup_rate=1.0, burst=1.0)
                ),
            ),
            clock=clock,
        )
        policy = SchedulingPolicy(tenants=registry)
        # A saturated queue sheds before the bucket is charged...
        assert policy.admission_shed_reason(
            queue_depth=8, max_queue=8, deadline_seconds=None,
            throughput=None, tenant_id="gold",
        ) == SHED_SATURATED
        assert registry.try_admit("gold")  # ...token still there
        # Bucket is now dry: the typed quota shed.
        assert policy.admission_shed_reason(
            queue_depth=0, max_queue=8, deadline_seconds=None,
            throughput=None, tenant_id="gold",
        ) == SHED_TENANT_QUOTA

    def test_tenantless_policy_admits_everyone(self):
        policy = SchedulingPolicy()
        assert policy.admission_shed_reason(
            queue_depth=0, max_queue=8, deadline_seconds=None,
            throughput=None, tenant_id="anyone",
        ) is None

    def test_over_share_needs_two_present_tenants(self):
        policy = self._policy(gold=1.0, brass=1.0)
        rows = [("gold", 100)] * 10
        only_gold = [_tenant_req(0, "gold")]
        assert policy.over_share_tenants(only_gold, rows) == frozenset()
        both = [_tenant_req(0, "gold"), _tenant_req(1, "brass")]
        assert policy.over_share_tenants(both, rows) == {"gold"}

    def test_weighted_share_respects_weights(self):
        policy = self._policy(gold=3.0, brass=1.0)
        runnable = [_tenant_req(0, "gold"), _tenant_req(1, "brass")]
        # Exactly at the 3:1 entitlement: nobody is over.
        rows = [("gold", 75), ("brass", 25)]
        assert policy.over_share_tenants(runnable, rows) == frozenset()
        # 80% of rows to the 75%-entitled tenant: over.
        rows = [("gold", 80), ("brass", 20)]
        assert policy.over_share_tenants(runnable, rows) == {"gold"}

    def test_pick_passes_over_the_hogging_tenant(self):
        policy = self._policy(gold=1.0, brass=1.0)
        hog = _tenant_req(0, "gold", remaining=10)
        waiting = _tenant_req(1, "brass", remaining=10**6)
        rows = [("gold", 1000)]
        # Despite cheaper work and FIFO priority, the over-share tenant
        # cannot lead the next batch while the other waits.
        assert policy.pick([hog, waiting], [], rows) is waiting
        # With no recent rows there is nothing to rebalance.
        assert policy.pick([hog, waiting], [], []) is hog

    def test_aged_request_exempt_from_fair_share(self):
        policy = self._policy(gold=1.0, brass=1.0)
        starving = _tenant_req(0, "gold", aged=True)
        starving.submitted_at = 0.0
        fresh = _tenant_req(1, "brass")
        rows = [("gold", 1000)]
        assert policy.pick([starving, fresh], [], rows) is starving

    def test_fill_order_sends_over_share_tenant_to_the_back(self):
        policy = self._policy(gold=1.0, brass=1.0)
        primary = _tenant_req(0, "brass", remaining=10**6)
        cheap_hog = _tenant_req(1, "gold", remaining=10)
        costly = _tenant_req(2, "brass", remaining=10**5)
        rows = [("gold", 1000)]
        order = policy.fill_order([primary, cheap_hog, costly], primary, rows)
        # Work conservation: the hog still rides spare capacity, last.
        assert order == [primary, costly, cheap_hog]
        order = policy.fill_order([primary, cheap_hog, costly], primary, [])
        assert order == [primary, cheap_hog, costly]


def _mask_for(seed: int):
    puf = SRAMPuf(num_cells=2048, stable_error=0.001, seed=seed)
    return enroll_with_masking(
        puf, 0, 2048, reads=8, instability_threshold=0.05
    )


class TestDirectoryTenancy:
    def test_namespaced_records_do_not_collide(self):
        directory = ShardedEnrollmentDirectory(b"tenancy-unittest", shards=2)
        gold, brass = _mask_for(1), _mask_for(2)
        directory.enroll("gold::dev", gold)
        directory.enroll("brass::dev", brass)
        directory.enroll("dev", _mask_for(3))
        assert len(directory) == 3
        assert (
            directory.lookup("gold::dev").reference_seed_bits(128)
            == gold.reference_seed_bits(128)
        ).all()
        assert (
            directory.lookup("brass::dev").reference_seed_bits(128)
            == brass.reference_seed_bits(128)
        ).all()
        assert directory.tenant_record_count("gold") == 1
        assert directory.tenant_record_count(DEFAULT_TENANT) == 1

    def test_enrollment_cap_enforced_at_install(self):
        registry = TenantRegistry(
            tenants=(
                TenantContext(
                    "gold", quota=TenantQuota(max_enrollments=2)
                ),
            )
        )
        directory = ShardedEnrollmentDirectory(
            b"tenancy-unittest", shards=2, tenants=registry
        )
        directory.enroll("gold::a", _mask_for(1))
        directory.enroll("gold::b", _mask_for(2))
        with pytest.raises(TenantQuotaExceeded) as excinfo:
            directory.enroll("gold::c", _mask_for(3))
        assert excinfo.value.tenant_id == "gold"
        assert excinfo.value.kind == "max_enrollments"
        # Re-enrolling a known record replaces, never consumes quota.
        directory.enroll("gold::a", _mask_for(4))
        assert directory.tenant_record_count("gold") == 2
        # Uncapped tenants are untouched by the cap machinery.
        directory.enroll("brass::a", _mask_for(5))

    def test_lookup_stats_carry_the_tenant(self):
        directory = ShardedEnrollmentDirectory(b"tenancy-unittest", shards=2)
        directory.enroll("gold::dev", _mask_for(1))
        _, stats = directory.lookup_with_stats("gold::dev")
        assert stats.tenant == "gold"
        _, stats = directory.lookup_with_stats("gold::dev")
        assert stats.tenant == "gold" and stats.hot_hit
        snapshot = directory.snapshot()
        assert snapshot["tenants"]["gold"]["lookups"] == 2
        assert snapshot["tenants"]["gold"]["enrollments"] == 1


def _build_authority(max_distance=1):
    return CertificateAuthority(
        search_service=RBCSearchService(
            BatchSearchExecutor("sha1", batch_size=4096),
            max_distance=max_distance,
        ),
        salt=HashChainSalt(),
        keygen=get_keygen("aes-128"),
        registration_authority=RegistrationAuthority(),
        image_db=EncryptedImageDatabase(b"tenancy-e2e-mkey"),
        hash_name="sha1",
    )


def _planted_digest(authority, client_id, tenant_id=None, distance=0):
    seed = authority.enrolled_seed(client_id, tenant_id=tenant_id)
    algo = get_hash(authority.hash_name)
    if distance == 0:
        return algo.hash_seed(seed)
    return algo.hash_seed(flip_bits(seed, list(range(distance))))


class TestAuthorityTenancy:
    def test_same_client_id_two_tenants_distinct_records(self):
        authority = _build_authority()
        authority.enroll("dev", _mask_for(1), tenant_id="gold")
        authority.enroll("dev", _mask_for(2), tenant_id="brass")
        gold_seed = authority.enrolled_seed("dev", tenant_id="gold")
        brass_seed = authority.enrolled_seed("dev", tenant_id="brass")
        assert gold_seed != brass_seed
        result = authority.run_search(
            "dev", _planted_digest(authority, "dev", "gold"),
            tenant_id="gold",
        )
        assert result.found
        key = authority.issue_public_key("dev", result.seed, tenant_id="gold")
        ra = authority.registration_authority
        assert ra.lookup("gold::dev") == key
        assert "brass::dev" not in ra
        assert "dev" not in ra

    def test_legacy_enrollment_stays_reachable_without_tenant(self):
        authority = _build_authority()
        authority.enroll("dev", _mask_for(3))
        assert authority.run_search(
            "dev", _planted_digest(authority, "dev")
        ).found


class TestServerTenancy:
    def test_fifo_front_door_sheds_over_budget_tenant(self):
        clock = ManualClock()
        registry = TenantRegistry(
            tenants=(
                TenantContext(
                    "gold", quota=TenantQuota(lookup_rate=1.0, burst=1.0)
                ),
            ),
            clock=clock,
        )
        authority = _build_authority()
        for i in range(3):
            authority.enroll(f"c{i}", _mask_for(10 + i), tenant_id="gold")
        digests = [
            _planted_digest(authority, f"c{i}", "gold") for i in range(3)
        ]
        with ConcurrentCAServer(
            authority, workers=2, tenants=registry
        ) as server:
            first = server.submit("c0", digests[0], tenant_id="gold")
            with pytest.raises(RequestShed) as excinfo:
                server.submit("c1", digests[1], tenant_id="gold")
            assert excinfo.value.reason == SHED_TENANT_QUOTA
            clock.advance(1.0)  # budget refills, service resumes
            second = server.submit("c2", digests[2], tenant_id="gold")
            assert first.result(timeout=60).authenticated
            assert second.result(timeout=60).authenticated
        snapshot = server.metrics.snapshot()
        assert snapshot["shed"] == 1
        assert snapshot["shed_tenant_quota"] == 1
        assert server.metrics.shed_breakdown() == {SHED_TENANT_QUOTA: 1}
        tenants = server.metrics.tenant_snapshot()
        assert tenants["gold"]["submitted"] == 2
        assert tenants["gold"]["shed"] == 1
        assert tenants["gold"]["quota_hits"] == 1
        # A shed request leaves no in-flight entry behind: the same
        # client can come straight back once the bucket refills.
        assert server._in_flight_clients == set()

    def test_scheduler_mode_shares_one_registry_with_the_policy(self):
        clock = ManualClock()
        registry = TenantRegistry(
            tenants=(
                TenantContext(
                    "gold", quota=TenantQuota(lookup_rate=1.0, burst=1.0)
                ),
            ),
            clock=clock,
        )
        authority = _build_authority()
        for i in range(2):
            authority.enroll(f"c{i}", _mask_for(20 + i), tenant_id="gold")
        digests = [
            _planted_digest(authority, f"c{i}", "gold") for i in range(2)
        ]
        engine = ScheduledSearchEngine("sha1", batch_size=4096)
        with ConcurrentCAServer(
            authority, scheduler=engine, tenants=registry
        ) as server:
            # The front door wired its registry into the admission
            # policy: exactly one bucket, charged exactly once.
            assert engine.scheduler.policy.tenants is registry
            first = server.submit("c0", digests[0], tenant_id="gold")
            with pytest.raises(RequestShed) as excinfo:
                server.submit("c1", digests[1], tenant_id="gold")
            assert excinfo.value.reason == SHED_TENANT_QUOTA
            assert first.result(timeout=60).authenticated
        snapshot = server.metrics.snapshot()
        assert snapshot["shed_tenant_quota"] == 1
        assert snapshot["completed"] == 1
        tenants = server.metrics.tenant_snapshot()
        assert tenants["gold"]["quota_hits"] == 1

    def test_untenanted_requests_ride_the_default_tenant_unchanged(self):
        authority = _build_authority()
        authority.enroll("legacy", _mask_for(30))
        digest = _planted_digest(authority, "legacy")
        with ConcurrentCAServer(authority, workers=1) as server:
            result = server.submit("legacy", digest).result(timeout=60)
        assert result.authenticated
        tenants = server.metrics.tenant_snapshot()
        assert set(tenants) == {DEFAULT_TENANT}
        assert tenants[DEFAULT_TENANT]["completed"] == 1


class TestWireTenancy:
    def test_tenant_rides_both_request_frames(self):
        handshake = HandshakeRequest("dev", tenant="gold")
        parsed = HandshakeRequest.from_bytes(handshake.to_bytes())
        assert parsed == handshake
        submission = DigestSubmission(
            "dev", b"\x01\x02", deadline_seconds=2.0, tenant="gold"
        )
        parsed = DigestSubmission.from_bytes(submission.to_bytes())
        assert parsed == submission

    def test_default_tenant_frames_are_byte_identical_to_legacy(self):
        frame = HandshakeRequest("dev").to_bytes()
        assert b"tenant" not in frame
        assert HandshakeRequest.from_bytes(frame).tenant == DEFAULT_TENANT
        frame = DigestSubmission("dev", b"\x01").to_bytes()
        assert b"tenant" not in frame
        assert DigestSubmission.from_bytes(frame).tenant == DEFAULT_TENANT

    def test_legacy_frame_without_tenant_key_parses_as_default(self):
        # A frame hand-built exactly as the pre-tenancy encoder wrote it.
        body = {"client_id": "dev", "type": "handshake_request"}
        canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
        body["crc"] = f"{zlib.crc32(canonical.encode()):08x}"
        raw = json.dumps(body, sort_keys=True, separators=(",", ":")).encode()
        parsed = HandshakeRequest.from_bytes(raw)
        assert parsed.client_id == "dev"
        assert parsed.tenant == DEFAULT_TENANT
