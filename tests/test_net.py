"""Network layer: messages, latency-accounted transport, endpoints."""

import numpy as np
import pytest

from repro.net.messages import (
    AuthenticationResult,
    DigestSubmission,
    HandshakeRequest,
    HandshakeResponse,
)
from repro.net.transport import (
    InProcessTransport,
    LatencyModel,
    US_ISRAEL_LINK,
    US_LINK,
)


class TestMessages:
    def test_handshake_request_serialization(self):
        raw = HandshakeRequest("alice").to_bytes()
        assert b"alice" in raw and b"handshake_request" in raw

    def test_usable_mask_roundtrip(self):
        usable = np.array([True, False, True] * 100)
        packed = HandshakeResponse.pack_usable(usable)
        response = HandshakeResponse(
            client_id="a", address=0, window=300, usable_mask=packed,
            bit_count=256, hash_name="sha3-256",
        )
        assert (response.unpack_usable() == usable).all()

    def test_digest_submission_hex_encoding(self):
        raw = DigestSubmission("a", b"\xde\xad").to_bytes()
        assert b"dead" in raw

    def test_result_serialization_with_and_without_key(self):
        with_key = AuthenticationResult("a", True, 2, b"\x01", 1.0, False).to_bytes()
        without = AuthenticationResult("a", False, None, None, 1.0, True).to_bytes()
        assert b"01" in with_key
        assert b"null" in without

    def test_decoding_tolerates_unknown_extra_body_fields(self):
        """Forward compatibility: parsers read only the keys they know.

        A newer peer may attach fields this build has never heard of
        (the tenant field arrived exactly this way); as long as the CRC
        covers what was actually sent, decoding must succeed and simply
        ignore the strangers rather than reject the frame.
        """
        import json
        import zlib

        def frame_with_extras(kind: str, payload: dict) -> bytes:
            body = dict(payload)
            body["type"] = kind
            body["x_future_field"] = "from-a-newer-peer"
            body["x_priority"] = 7
            canonical = json.dumps(
                body, sort_keys=True, separators=(",", ":")
            )
            body["crc"] = f"{zlib.crc32(canonical.encode()):08x}"
            return json.dumps(
                body, sort_keys=True, separators=(",", ":")
            ).encode()

        request = HandshakeRequest.from_bytes(
            frame_with_extras("handshake_request", {"client_id": "alice"})
        )
        assert request == HandshakeRequest("alice")
        submission = DigestSubmission.from_bytes(
            frame_with_extras(
                "digest_submission",
                {
                    "client_id": "alice",
                    "digest": "dead",
                    "deadline_seconds": None,
                },
            )
        )
        assert submission == DigestSubmission("alice", b"\xde\xad")
        # And the round trip through our own encoder stays lossless.
        assert DigestSubmission.from_bytes(submission.to_bytes()) == submission


class TestTransport:
    def test_message_cost_components(self):
        model = LatencyModel("t", round_trip_seconds=0.2, bytes_per_second=1000)
        assert model.message_cost(500) == pytest.approx(0.1 + 0.5)

    def test_clock_accumulates(self):
        transport = InProcessTransport(latency=LatencyModel("t", 0.2, 1e9))
        transport.deliver("a", b"x" * 10)
        transport.deliver("b", b"x" * 10)
        assert transport.elapsed_seconds == pytest.approx(0.2, rel=0.01)
        assert transport.messages_delivered == 2
        assert transport.bytes_delivered == 20

    def test_payload_passthrough(self):
        transport = InProcessTransport()
        assert transport.deliver("a", b"payload") == b"payload"

    def test_puf_read_charged(self):
        transport = InProcessTransport(latency=US_LINK)
        transport.charge_puf_read()
        assert transport.elapsed_seconds == pytest.approx(US_LINK.puf_read_seconds)

    def test_log_and_reset(self):
        transport = InProcessTransport()
        transport.deliver("a", b"x")
        assert len(transport.log) == 1
        transport.reset()
        assert transport.elapsed_seconds == 0 and not transport.log

    def test_us_link_matches_paper_comm_time(self, small_authority):
        """A full authentication round must cost ~0.90 s of communication."""
        from repro.net.client import NetworkClient
        from repro.net.server import CAServer

        authority, client, mask = small_authority
        transport = InProcessTransport(latency=US_LINK)
        NetworkClient(client, transport, reference_mask=mask).authenticate(
            CAServer(authority)
        )
        assert transport.elapsed_seconds == pytest.approx(0.90, abs=0.05)

    def test_long_haul_link_costs_more(self):
        assert US_ISRAEL_LINK.message_cost(1000) > US_LINK.message_cost(1000)


class TestEndpoints:
    def test_full_round_authenticates(self, small_authority):
        from repro.net.client import NetworkClient
        from repro.net.server import CAServer

        authority, client, mask = small_authority
        server = CAServer(authority)
        transport = InProcessTransport(latency=US_LINK)
        result = NetworkClient(client, transport, reference_mask=mask).authenticate(server)
        assert result.authenticated
        assert result.public_key == authority.registration_authority.lookup("client-0")
        assert server.handshakes_served >= 1 and server.searches_run >= 1

    def test_imposter_rejected_over_network(self, small_authority):
        from repro.net.client import NetworkClient
        from repro.net.server import CAServer
        from repro.core.protocol import ClientDevice
        from repro.puf.model import SRAMPuf

        authority, _, _ = small_authority
        imposter = ClientDevice(
            "client-0", SRAMPuf(num_cells=2048, seed=4242),
            rng=np.random.default_rng(0),
        )
        transport = InProcessTransport()
        result = NetworkClient(imposter, transport, max_attempts=2).authenticate(
            CAServer(authority)
        )
        assert not result.authenticated and result.public_key is None

    def test_retries_charge_extra_communication(self, small_authority):
        from repro.net.client import NetworkClient
        from repro.net.server import CAServer
        from repro.core.protocol import ClientDevice
        from repro.puf.model import SRAMPuf

        authority, _, _ = small_authority
        imposter = ClientDevice(
            "client-0", SRAMPuf(num_cells=2048, seed=77),
            rng=np.random.default_rng(0),
        )
        transport = InProcessTransport(latency=US_LINK)
        NetworkClient(imposter, transport, max_attempts=3).authenticate(CAServer(authority))
        # Three full rounds of messages were paid for.
        assert transport.elapsed_seconds == pytest.approx(3 * 0.90, rel=0.1)

    def test_max_attempts_validation(self, small_authority):
        from repro.net.client import NetworkClient
        from repro.core.protocol import ClientDevice
        from repro.puf.model import SRAMPuf

        with pytest.raises(ValueError):
            NetworkClient(
                ClientDevice("x", SRAMPuf(num_cells=512, seed=0)),
                InProcessTransport(),
                max_attempts=0,
            )
