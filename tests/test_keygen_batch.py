"""Vectorized key-agile cipher kernels vs their scalar references."""

import numpy as np
import pytest

from repro.keygen.aes import AES128
from repro.keygen.batch_aes import aes128_encrypt_batch, expand_keys_batch
from repro.keygen.batch_chacha20 import chacha20_block_batch
from repro.keygen.batch_speck import speck128_encrypt_batch
from repro.keygen.chacha20 import chacha20_block
from repro.keygen.speck import Speck128


class TestBatchAES:
    def test_fips197_vector(self):
        key = np.frombuffer(bytes(range(16)), np.uint8)[None, :]
        pt = np.frombuffer(
            bytes.fromhex("00112233445566778899aabbccddeeff"), np.uint8
        )[None, :]
        ct = aes128_encrypt_batch(key, pt)
        assert ct[0].tobytes().hex() == "69c4e0d86a7b0430d8cdb78070b4c55a"

    def test_matches_scalar_on_random_keys(self, rng):
        n = 40
        keys = rng.integers(0, 256, (n, 16), dtype=np.uint8)
        pts = rng.integers(0, 256, (n, 16), dtype=np.uint8)
        cts = aes128_encrypt_batch(keys, pts)
        for i in range(n):
            expected = AES128(keys[i].tobytes()).encrypt_block(pts[i].tobytes())
            assert cts[i].tobytes() == expected

    def test_key_agility(self, rng):
        # Same plaintext under different keys -> different ciphertexts.
        pt = rng.integers(0, 256, (1, 16), dtype=np.uint8)
        keys = rng.integers(0, 256, (8, 16), dtype=np.uint8)
        cts = aes128_encrypt_batch(keys, np.repeat(pt, 8, axis=0))
        assert len({c.tobytes() for c in cts}) == 8

    def test_round_key_expansion_matches_scalar(self, rng):
        from repro.keygen.aes import _expand_key

        keys = rng.integers(0, 256, (5, 16), dtype=np.uint8)
        batch_rks = expand_keys_batch(keys)
        for i in range(5):
            scalar_rks = _expand_key(keys[i].tobytes())
            for r in range(11):
                assert batch_rks[r][i].tolist() == scalar_rks[r]

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            aes128_encrypt_batch(np.zeros((2, 15), np.uint8), np.zeros((2, 16), np.uint8))
        with pytest.raises(ValueError):
            aes128_encrypt_batch(np.zeros((2, 16), np.uint8), np.zeros((3, 16), np.uint8))


class TestBatchSpeck:
    def test_paper_vector(self):
        key = np.frombuffer(
            bytes.fromhex("0f0e0d0c0b0a09080706050403020100"), np.uint8
        )[None, :]
        pt = np.frombuffer(
            bytes.fromhex("6c617669757165207469206564616d20"), np.uint8
        )[None, :]
        ct = speck128_encrypt_batch(key, pt)
        assert ct[0].tobytes().hex() == "a65d9851797832657860fedf5c570d18"

    def test_matches_scalar(self, rng):
        n = 40
        keys = rng.integers(0, 256, (n, 16), dtype=np.uint8)
        pts = rng.integers(0, 256, (n, 16), dtype=np.uint8)
        cts = speck128_encrypt_batch(keys, pts)
        for i in range(n):
            expected = Speck128(keys[i].tobytes()).encrypt_block(pts[i].tobytes())
            assert cts[i].tobytes() == expected

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            speck128_encrypt_batch(np.zeros((2, 16), np.uint8), np.zeros((2, 8), np.uint8))


class TestBatchChaCha:
    def test_rfc8439_vector(self):
        key = np.frombuffer(bytes(range(32)), np.uint8)[None, :]
        nonce = bytes.fromhex("000000090000004a00000000")
        block = chacha20_block_batch(key, counter=1, nonce=nonce)
        assert block[0].tobytes() == chacha20_block(bytes(range(32)), 1, nonce)

    def test_matches_scalar(self, rng):
        keys = rng.integers(0, 256, (25, 32), dtype=np.uint8)
        nonce = rng.bytes(12)
        blocks = chacha20_block_batch(keys, counter=7, nonce=nonce)
        for i in range(25):
            assert blocks[i].tobytes() == chacha20_block(keys[i].tobytes(), 7, nonce)

    def test_validation(self):
        with pytest.raises(ValueError):
            chacha20_block_batch(np.zeros((2, 31), np.uint8))
        with pytest.raises(ValueError):
            chacha20_block_batch(np.zeros((2, 32), np.uint8), nonce=b"short")
