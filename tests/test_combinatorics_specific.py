"""Algorithm-specific behaviours of the individual generators."""

import pytest

from repro.combinatorics.algorithm154 import lexicographic_successor
from repro.combinatorics.algorithm382 import minimal_change_sequence, minimal_change_step
from repro.combinatorics.algorithm515 import Algorithm515Iterator, unrank_lexicographic
from repro.combinatorics.binomial import binomial
from repro.combinatorics.gosper import GosperIterator, gosper_next, gosper_next_native


class TestGosper:
    def test_next_preserves_popcount(self):
        value = 0b10110
        for _ in range(50):
            nxt = gosper_next(value)
            assert bin(nxt).count("1") == 3
            assert nxt > value
            value = nxt

    def test_first_step(self):
        assert gosper_next(0b0111) == 0b1011

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            gosper_next(0)

    def test_native_width_guard(self):
        # Highest 3-subset mask of 64 bits has no 64-bit successor.
        top = 0b111 << 61
        with pytest.raises(OverflowError):
            gosper_next_native(top, width=64)

    def test_native_passes_in_range(self):
        assert gosper_next_native(0b0111, width=64) == 0b1011

    def test_multiword_256_bit_operation(self):
        # Python bignums emulate the multiword path: cross the 64-bit line.
        mask = (1 << 63) | (1 << 62)
        nxt = gosper_next(mask)
        assert nxt == (1 << 64) | 1  # run of 2 at top ripples over the word edge
        assert nxt.bit_count() == 2

    def test_state_restore_validates_popcount(self):
        it = GosperIterator(8, 3)
        with pytest.raises(ValueError):
            it.restore((0b11, False))


class TestAlgorithm154:
    def test_successor_simple(self):
        assert lexicographic_successor((0, 1, 2), 5) == (0, 1, 3)

    def test_successor_carries(self):
        assert lexicographic_successor((0, 3, 4), 5) == (1, 2, 3)

    def test_successor_none_at_end(self):
        assert lexicographic_successor((2, 3, 4), 5) is None


class TestAlgorithm382:
    def test_step_mutates_in_place(self):
        c = [0, 1]
        assert minimal_change_step(c, 4) is True
        assert c != [0, 1]

    def test_step_false_leaves_untouched(self):
        # Find the last combination, then check it isn't modified.
        seq = list(minimal_change_sequence(5, 2))
        last = list(seq[-1])
        copy = list(last)
        assert minimal_change_step(last, 5) is False
        assert last == copy

    def test_sequence_rejects_bad_params(self):
        with pytest.raises(ValueError):
            list(minimal_change_sequence(3, 5))

    def test_large_k_parity_coverage(self):
        # Odd and even k exercise the two R3 branches.
        for k in (3, 4):
            seq = list(minimal_change_sequence(10, k))
            assert len(seq) == binomial(10, k)
            assert len(set(seq)) == len(seq)

    def test_element_moves_are_bounded_swaps(self):
        seq = list(minimal_change_sequence(8, 3))
        for a, b in zip(seq, seq[1:]):
            removed = set(a) - set(b)
            added = set(b) - set(a)
            assert len(removed) == 1 and len(added) == 1


class TestAlgorithm515:
    def test_unrank_first_and_last(self):
        assert unrank_lexicographic(6, 3, 0) == (0, 1, 2)
        assert unrank_lexicographic(6, 3, binomial(6, 3) - 1) == (3, 4, 5)

    def test_unrank_out_of_range(self):
        with pytest.raises(IndexError):
            unrank_lexicographic(6, 3, binomial(6, 3))
        with pytest.raises(IndexError):
            unrank_lexicographic(6, 3, -1)

    def test_unrank_256_bit_scale(self):
        # d=5 scale: exact unranking deep into the space.
        combo = unrank_lexicographic(256, 5, binomial(256, 5) - 1)
        assert combo == (251, 252, 253, 254, 255)

    def test_lookup_table_variant_matches(self):
        plain = Algorithm515Iterator(10, 4)
        table = Algorithm515Iterator(10, 4, use_lookup_table=True)
        assert list(plain) == list(table)

    def test_total_property(self):
        assert Algorithm515Iterator(10, 4).total == binomial(10, 4)

    def test_skip_to_is_constant_position(self):
        it = Algorithm515Iterator(256, 5)
        it.skip_to(123456789)
        assert it.current() == unrank_lexicographic(256, 5, 123456789)
