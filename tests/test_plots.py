"""ASCII plotting helpers."""

import pytest

from repro.analysis.plots import bar_chart, line_plot


class TestLinePlot:
    def test_contains_all_series_markers(self):
        out = line_plot(
            {"a": [(1, 1), (2, 2)], "b": [(1, 2), (2, 1)]}
        )
        assert "*" in out and "+" in out
        assert "legend: * a   + b" in out

    def test_axis_labels(self):
        out = line_plot({"s": [(0, 0), (10, 5)]}, x_label="gpus", y_label="spd")
        assert "gpus" in out and "spd" in out

    def test_range_annotations(self):
        out = line_plot({"s": [(1, 3), (4, 9)]})
        assert "9" in out and "3" in out and "1" in out and "4" in out

    def test_flat_series_does_not_crash(self):
        out = line_plot({"flat": [(0, 5), (1, 5), (2, 5)]})
        assert "*" in out

    def test_single_point(self):
        out = line_plot({"dot": [(2, 2)]})
        assert "*" in out

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            line_plot({})
        with pytest.raises(ValueError):
            line_plot({"empty": []})

    def test_title(self):
        out = line_plot({"s": [(0, 0), (1, 1)]}, title="My Figure")
        assert out.splitlines()[0] == "My Figure"


class TestBarChart:
    def test_bars_scale_with_values(self):
        out = bar_chart({"small": 1.0, "big": 10.0}, width=20)
        lines = {l.split(" |")[0].strip(): l for l in out.splitlines()}
        assert lines["big"].count("#") > lines["small"].count("#")

    def test_value_labels(self):
        out = bar_chart({"x": 3.14159}, value_format="{:.1f}")
        assert "3.1" in out

    def test_zero_value_gets_no_bar(self):
        out = bar_chart({"zero": 0.0, "one": 1.0})
        zero_line = [l for l in out.splitlines() if l.startswith("zero")][0]
        assert "#" not in zero_line

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart({})
        with pytest.raises(ValueError):
            bar_chart({"neg": -1.0})
