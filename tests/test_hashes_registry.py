"""The hash registry binding scalar, batch, and APU metadata together."""

import pytest

from repro._bitutils import seeds_to_words
from repro.hashes.registry import available_hashes, get_hash


class TestLookup:
    def test_available_names(self):
        assert set(available_hashes()) == {"sha1", "sha256", "sha3-256", "sha512"}

    @pytest.mark.parametrize(
        "alias,canonical",
        [
            ("sha1", "sha1"),
            ("SHA-1", "sha1"),
            ("sha3", "sha3-256"),
            ("SHA3_256", "sha3-256"),
            ("sha2", "sha256"),
        ],
    )
    def test_aliases(self, alias, canonical):
        assert get_hash(alias).name == canonical

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_hash("md5")


class TestMetadata:
    def test_apu_footprints_match_paper(self):
        # Section 3.3: SHA-1 PE = 2 BPs, SHA-3 PE = 5 BPs.
        assert get_hash("sha1").apu_bps_per_pe == 2
        assert get_hash("sha3-256").apu_bps_per_pe == 5

    def test_relative_costs_ordered(self):
        # SHA-1 cheapest, SHA-3 most expensive (the paper's premise).
        assert (
            get_hash("sha1").relative_cost
            < get_hash("sha256").relative_cost
            < get_hash("sha512").relative_cost
            < get_hash("sha3-256").relative_cost
        )

    def test_digest_sizes(self):
        assert get_hash("sha1").digest_size == 20
        assert get_hash("sha256").digest_size == 32
        assert get_hash("sha3-256").digest_size == 32


class TestDispatch:
    @pytest.mark.parametrize("name", ["sha1", "sha256", "sha3-256", "sha512"])
    def test_scalar_batch_consistency(self, name, rng):
        algo = get_hash(name)
        seeds = [rng.bytes(32) for _ in range(10)]
        batch = algo.hash_seeds_batch(seeds_to_words(seeds))
        for i, seed in enumerate(seeds):
            scalar_words = algo.digest_to_words(algo.hash_seed(seed))
            assert (batch[i] == scalar_words).all()
