"""Reporting helpers: tables, heatmaps, metrics."""

import pytest

from repro.analysis.metrics import (
    PaperComparison,
    compare_to_paper,
    parallel_efficiency,
    speedup,
)
from repro.analysis.tables import format_heatmap, format_table


class TestTables:
    def test_alignment(self):
        out = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = out.splitlines()
        assert len({len(line) for line in lines}) == 1  # all same width

    def test_title(self):
        out = format_table(["x"], [["1"]], title="Table 1")
        assert out.splitlines()[0] == "Table 1"

    def test_heatmap_marks_minimum(self):
        out = format_heatmap([1, 2], ["a", "b"], [[2.0, 1.0], [3.0, 4.0]])
        assert out.count("*") == 1
        assert "1.000*" in out

    def test_heatmap_axis_labels(self):
        out = format_heatmap([1], ["a"], [[1.0]], row_axis="n", col_axis="b")
        assert "n\\b" in out


class TestMetrics:
    def test_speedup(self):
        assert speedup(10.0, 2.0) == 5.0

    def test_speedup_validation(self):
        with pytest.raises(ValueError):
            speedup(10.0, 0.0)

    def test_efficiency(self):
        assert parallel_efficiency(10.0, 2.0, 5) == 1.0

    def test_efficiency_validation(self):
        with pytest.raises(ValueError):
            parallel_efficiency(10.0, 2.0, 0)

    def test_comparison_deviation(self):
        comp = compare_to_paper("T5", "gpu-sha3", 4.67, 4.70)
        assert comp.deviation_percent == pytest.approx(0.64, abs=0.05)
        assert comp.ratio == pytest.approx(4.70 / 4.67)

    def test_comparison_row_format(self):
        row = PaperComparison("T5", "x", 1.0, 1.1).row()
        assert row[0] == "T5" and row[-1] == "+10.0%"
