"""Associative-processor simulator and the bit-sliced hash programs."""

import hashlib

import numpy as np
import pytest

from repro._bitutils import seeds_to_words
from repro.devices.associative import AssociativeProcessor
from repro.devices.bitserial import (
    hash_cost_profile,
    sha1_bitserial,
    sha3_256_bitserial,
)
from repro.hashes.batch_sha1 import sha1_digest_to_words
from repro.hashes.batch_sha3 import sha3_256_digest_to_words


class TestAssociativeProcessor:
    def test_load_read_roundtrip(self):
        proc = AssociativeProcessor(8)
        values = np.arange(8, dtype=np.uint64) * 1234567
        word = proc.load_words(values, 32)
        assert (proc.read_words(word) == values).all()

    def test_rotation_is_free(self):
        proc = AssociativeProcessor(4)
        word = proc.load_words(np.array([1, 2, 3, 4], dtype=np.uint64), 32)
        before = proc.op_count
        rotated = word.rotl(7)
        assert proc.op_count == before  # column renaming costs nothing
        expected = (np.array([1, 2, 3, 4], dtype=np.uint64) << np.uint64(7)) & np.uint64(0xFFFFFFFF)
        assert (proc.read_words(rotated) == expected).all()

    def test_rotr_inverts_rotl(self):
        proc = AssociativeProcessor(2)
        word = proc.load_words(np.array([0xDEADBEEF, 5], dtype=np.uint64), 32)
        assert (
            proc.read_words(word.rotl(13).rotr(13)) == proc.read_words(word)
        ).all()

    def test_add_is_modular(self):
        proc = AssociativeProcessor(3)
        a = proc.load_words(np.array([0xFFFFFFFF, 7, 100], dtype=np.uint64), 32)
        b = proc.load_words(np.array([1, 9, 28], dtype=np.uint64), 32)
        total = proc.add(a, b)
        assert proc.read_words(total).tolist() == [0, 16, 128]

    def test_add_costs_five_ops_per_bit(self):
        proc = AssociativeProcessor(1)
        a = proc.load_words(np.array([1], dtype=np.uint64), 32)
        b = proc.load_words(np.array([2], dtype=np.uint64), 32)
        before = proc.op_count
        proc.add(a, b)
        assert proc.op_count - before == 5 * 32

    def test_xor_costs_one_op_per_bit(self):
        proc = AssociativeProcessor(1)
        a = proc.load_words(np.array([1], dtype=np.uint64), 64)
        b = proc.load_words(np.array([2], dtype=np.uint64), 64)
        before = proc.op_count
        proc.xor(a, b)
        assert proc.op_count - before == 64

    def test_boolean_ops(self):
        proc = AssociativeProcessor(1)
        a = proc.load_words(np.array([0b1100], dtype=np.uint64), 4)
        b = proc.load_words(np.array([0b1010], dtype=np.uint64), 4)
        assert proc.read_words(proc.and_(a, b)).tolist() == [0b1000]
        assert proc.read_words(proc.or_(a, b)).tolist() == [0b1110]
        assert proc.read_words(proc.xor(a, b)).tolist() == [0b0110]
        assert proc.read_words(proc.not_(a)).tolist() == [0b0011]

    def test_mux_selects(self):
        proc = AssociativeProcessor(1)
        sel = proc.load_words(np.array([0b10], dtype=np.uint64), 2)
        a = proc.load_words(np.array([0b11], dtype=np.uint64), 2)
        b = proc.load_words(np.array([0b00], dtype=np.uint64), 2)
        assert proc.read_words(proc.mux(sel, a, b)).tolist() == [0b10]

    def test_column_accounting(self):
        proc = AssociativeProcessor(1)
        word = proc.load_words(np.array([0], dtype=np.uint64), 32)
        assert proc.peak_columns >= 32
        proc.free_word(word)
        other = proc.load_words(np.array([0], dtype=np.uint64), 16)
        assert proc.stats()["live_columns"] == 16

    def test_width_mismatch_rejected(self):
        proc = AssociativeProcessor(1)
        a = proc.load_words(np.array([0], dtype=np.uint64), 16)
        b = proc.load_words(np.array([0], dtype=np.uint64), 32)
        with pytest.raises(ValueError):
            proc.xor(a, b)

    def test_pe_count_validation(self):
        with pytest.raises(ValueError):
            AssociativeProcessor(0)


class TestBitSerialHashes:
    def test_sha1_matches_hashlib(self, rng):
        seeds = [rng.bytes(32) for _ in range(5)]
        proc = AssociativeProcessor(5)
        digests = sha1_bitserial(proc, seeds_to_words(seeds))
        for i, seed in enumerate(seeds):
            want = sha1_digest_to_words(hashlib.sha1(seed).digest())
            assert (digests[i] == want).all()

    def test_sha3_matches_hashlib(self, rng):
        seeds = [rng.bytes(32) for _ in range(5)]
        proc = AssociativeProcessor(5)
        digests = sha3_256_bitserial(proc, seeds_to_words(seeds))
        for i, seed in enumerate(seeds):
            want = sha3_256_digest_to_words(hashlib.sha3_256(seed).digest())
            assert (digests[i] == want).all()

    def test_batch_size_must_match_pes(self, rng):
        proc = AssociativeProcessor(3)
        with pytest.raises(ValueError):
            sha1_bitserial(proc, seeds_to_words([rng.bytes(32)]))

    def test_no_column_leaks(self, rng):
        """After a full hash, every temporary must have been freed."""
        seeds = seeds_to_words([rng.bytes(32) for _ in range(2)])
        proc = AssociativeProcessor(2)
        sha1_bitserial(proc, seeds)
        assert proc.stats()["live_columns"] == 0
        proc3 = AssociativeProcessor(2)
        sha3_256_bitserial(proc3, seeds)
        assert proc3.stats()["live_columns"] == 0


class TestEmergentCostStructure:
    """The paper's APU findings, from gate-level op counts."""

    @pytest.fixture(scope="class")
    def profile(self):
        return hash_cost_profile(num_pes=2)

    def test_sha3_costs_more_ops(self, profile):
        ratio = profile["sha3-256"]["ops_per_hash"] / profile["sha1"]["ops_per_hash"]
        # Paper's per-PE rate ratio is 3.44; the op-count ratio must land
        # in the same regime.
        assert 2.0 < ratio < 5.0

    def test_sha3_needs_more_state(self, profile):
        ratio = (
            profile["sha3-256"]["peak_columns"] / profile["sha1"]["peak_columns"]
        )
        # Paper's BP-per-PE ratio is 2.5; same regime.
        assert 2.0 < ratio < 5.0

    def test_sha1_is_adder_dominated(self):
        """Most SHA-1 column ops come from ripple-carry additions."""
        import numpy as np

        proc = AssociativeProcessor(1)
        seeds = np.zeros((1, 4), dtype=np.uint64)
        sha1_bitserial(proc, seeds)
        # 80 rounds x 4 adds x 160 ops + 5 final adds = ~52k of ~66k total.
        adder_ops = (80 * 4 + 5) * 5 * 32
        assert adder_ops / proc.op_count > 0.7

    def test_keccak_has_no_adders(self):
        """Keccak's op count is exactly its boolean-op count (validated
        by construction: the implementation never calls add)."""
        import numpy as np

        proc = AssociativeProcessor(1)
        seeds = np.zeros((1, 4), dtype=np.uint64)
        sha3_256_bitserial(proc, seeds)
        # theta (45 xor-64s) + chi (75 ops of 64) + iota per round, plus
        # state load: all multiples of small boolean ops; just check the
        # scale is the analytic one.
        per_round = (45 + 75) * 64
        assert abs(proc.op_count - 24 * per_round) / proc.op_count < 0.15
