"""Hardened session layer and the opponent/attack analyses."""

import dataclasses

import numpy as np
import pytest

from repro import quick_setup
from repro.core.attack import (
    OpponentSimulator,
    avalanche_profile,
    digest_key_correlation,
)
from repro.core.salting import HashChainSalt, RotateSalt
from repro.keygen.interface import get_keygen
from repro.net.session import (
    SecureClientSession,
    SessionError,
    SessionManager,
)

MAC_KEY = b"enrollment-secret-0!"


@pytest.fixture
def secure_setup():
    authority, client, mask = quick_setup(seed=5, max_distance=1, noise_target_distance=1)
    manager = SessionManager(authority, rng=np.random.default_rng(0))
    manager.install_mac_key("client-0", MAC_KEY)
    session = SecureClientSession(client, MAC_KEY)
    return manager, session, mask


class TestSecureSessions:
    def test_happy_path(self, secure_setup):
        manager, session, mask = secure_setup
        challenge = manager.issue_challenge("client-0")
        digest = session.respond(challenge, reference_mask=mask)
        result = manager.accept_digest("client-0", challenge.nonce, digest)
        assert result.authenticated and result.public_key

    def test_nonce_binding_changes_digest(self, secure_setup):
        manager, session, mask = secure_setup
        a = manager.issue_challenge("client-0")
        b = manager.issue_challenge("client-0")
        assert a.nonce != b.nonce
        # Same PUF state read twice still yields nonce-distinct digests
        # with overwhelming probability.
        da = session.respond(a, reference_mask=mask)
        db = session.respond(b, reference_mask=mask)
        assert da != db

    def test_replay_rejected(self, secure_setup):
        manager, session, mask = secure_setup
        challenge = manager.issue_challenge("client-0")
        digest = session.respond(challenge, reference_mask=mask)
        manager.accept_digest("client-0", challenge.nonce, digest)
        with pytest.raises(SessionError):
            manager.accept_digest("client-0", challenge.nonce, digest)
        assert manager.replays_rejected == 1

    def test_unknown_nonce_rejected(self, secure_setup):
        manager, _session, _mask = secure_setup
        with pytest.raises(SessionError):
            manager.accept_digest("client-0", b"\x00" * 16, b"\x00" * 32)

    def test_cross_client_nonce_rejected(self, secure_setup):
        manager, session, mask = secure_setup
        manager.install_mac_key("client-1", MAC_KEY)
        challenge = manager.issue_challenge("client-0")
        digest = session.respond(challenge, reference_mask=mask)
        with pytest.raises(SessionError):
            manager.accept_digest("client-1", challenge.nonce, digest)

    def test_expired_nonce_rejected(self, secure_setup):
        authority, client, mask = quick_setup(
            seed=5, max_distance=1, noise_target_distance=1
        )
        clock = {"now": 0.0}
        manager = SessionManager(
            authority,
            nonce_lifetime_seconds=10.0,
            rng=np.random.default_rng(0),
            clock=lambda: clock["now"],
        )
        manager.install_mac_key("client-0", MAC_KEY)
        session = SecureClientSession(client, MAC_KEY)
        challenge = manager.issue_challenge("client-0")
        digest = session.respond(challenge, reference_mask=mask)
        clock["now"] = 11.0
        with pytest.raises(SessionError):
            manager.accept_digest("client-0", challenge.nonce, digest)

    def test_forged_challenge_rejected_by_client(self, secure_setup):
        manager, session, mask = secure_setup
        challenge = manager.issue_challenge("client-0")
        forged = dataclasses.replace(challenge, mac=b"\x00" * len(challenge.mac))
        with pytest.raises(SessionError):
            session.respond(forged, reference_mask=mask)

    def test_tampered_challenge_address_rejected(self, secure_setup):
        manager, session, mask = secure_setup
        secure = manager.issue_challenge("client-0")
        tampered_inner = dataclasses.replace(secure.challenge, address=1)
        tampered = dataclasses.replace(secure, challenge=tampered_inner)
        with pytest.raises(SessionError):
            session.respond(tampered, reference_mask=mask)

    def test_missing_mac_key(self, secure_setup):
        manager, _, _ = secure_setup
        with pytest.raises(SessionError):
            manager._key_for("stranger")

    def test_weak_mac_key_rejected(self, secure_setup):
        manager, _, _ = secure_setup
        with pytest.raises(ValueError):
            manager.install_mac_key("x", b"short")


class TestOpponent:
    def test_brute_force_never_wins_in_budget(self, rng):
        from repro.hashes.sha3 import sha3_256

        simulator = OpponentSimulator("sha3-256", batch_size=4096)
        estimate = simulator.brute_force(
            sha3_256(rng.bytes(32)), budget_seconds=0.2, rng=rng
        )
        assert not estimate.matched
        assert estimate.seeds_tried > 0
        assert estimate.expected_years_full_space > 1e40

    def test_summary_format(self, rng):
        from repro.hashes.sha1 import sha1

        simulator = OpponentSimulator("sha1", batch_size=2048)
        estimate = simulator.brute_force(sha1(rng.bytes(32)), 0.1, rng=rng)
        assert "years" in estimate.summary()

    def test_informed_advantage_matches_complexity(self):
        simulator = OpponentSimulator()
        assert simulator.informed_search_advantage(5) > 1e60


class TestStatisticalSecurity:
    @pytest.mark.parametrize("hash_name", ["sha1", "sha256", "sha3-256"])
    def test_avalanche_near_half(self, hash_name, rng):
        mean, std = avalanche_profile(hash_name, samples=150, rng=rng)
        assert abs(mean - 0.5) < 0.03
        assert std < 0.08

    def test_salted_key_uncorrelated_with_digest(self, rng):
        corr = digest_key_correlation(
            HashChainSalt(), get_keygen("aes-128"), samples=60, rng=rng
        )
        # |r| over 128 paired bits has stdev ~ 0.09; the mean of |r|
        # concentrates well below 0.2 when independent.
        assert corr < 0.2

    def test_rotation_salt_also_decouples(self, rng):
        corr = digest_key_correlation(
            RotateSalt(96), get_keygen("aes-128"), samples=60, rng=rng
        )
        assert corr < 0.2
