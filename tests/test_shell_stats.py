"""Per-shell search statistics (the breakdown API)."""

import numpy as np
import pytest

from repro._bitutils import flip_bits
from repro.combinatorics.binomial import binomial
from repro.hashes.sha1 import sha1
from repro.runtime import BatchSearchExecutor, ShellStats


class TestShellStats:
    def test_full_miss_covers_every_shell(self, base_seed, rng):
        executor = BatchSearchExecutor("sha1", batch_size=4096)
        result = executor.search(base_seed, sha1(rng.bytes(32)), 2)
        distances = [s.distance for s in result.shells]
        assert distances == [0, 1, 2]
        by_distance = {s.distance: s.seeds_hashed for s in result.shells}
        assert by_distance[0] == 1
        assert by_distance[1] == 256
        assert by_distance[2] == binomial(256, 2)

    def test_shell_counts_sum_to_total(self, base_seed, rng):
        executor = BatchSearchExecutor("sha1", batch_size=2048)
        result = executor.search(base_seed, sha1(rng.bytes(32)), 2)
        assert sum(s.seeds_hashed for s in result.shells) == result.seeds_hashed

    def test_found_search_truncates_last_shell(self, base_seed):
        client = flip_bits(base_seed, [3, 4])  # early in lexicographic order
        executor = BatchSearchExecutor("sha1", batch_size=257)
        result = executor.search(base_seed, sha1(client), 2)
        assert result.found
        last = result.shells[-1]
        assert last.distance == 2
        assert last.seeds_hashed < binomial(256, 2)

    def test_distance_zero_hit_has_single_shell(self, base_seed):
        executor = BatchSearchExecutor("sha1")
        result = executor.search(base_seed, sha1(base_seed), 2)
        assert [s.distance for s in result.shells] == [0]

    def test_throughput_property(self):
        stats = ShellStats(distance=2, seeds_hashed=1000, seconds=0.5)
        assert stats.throughput == pytest.approx(2000.0)
        assert ShellStats(1, 10, 0.0).throughput == 0.0

    def test_higher_shells_get_faster_throughput(self, base_seed, rng):
        """Bigger shells amortize batch overhead — the lane-width story
        visible inside a single search."""
        executor = BatchSearchExecutor("sha1", batch_size=16384)
        result = executor.search(base_seed, sha1(rng.bytes(32)), 2)
        by_distance = {s.distance: s for s in result.shells}
        assert by_distance[2].throughput > by_distance[1].throughput

    def test_timeout_records_partial_shell(self, base_seed, rng):
        executor = BatchSearchExecutor("sha1", batch_size=64)
        result = executor.search(
            base_seed, sha1(rng.bytes(32)), 2, time_budget=0.0
        )
        assert result.timed_out
        assert result.shells[-1].seeds_hashed <= binomial(256, result.shells[-1].distance)
