"""Cross-cutting tests of the four combination iterators.

Each iterator implements the shared CombinationIterator interface; these
tests check the contract uniformly: full coverage without repetition,
deterministic reset, state snapshot/restore, cloning, and random access.
"""

from itertools import combinations

import pytest

from repro.combinatorics import (
    Algorithm154Iterator,
    Algorithm382Iterator,
    Algorithm515Iterator,
    Chase382Iterator,
    GosperIterator,
    binomial,
)

ITERATORS = [
    Algorithm154Iterator,
    Algorithm382Iterator,
    Algorithm515Iterator,
    Chase382Iterator,
    GosperIterator,
]


@pytest.fixture(params=ITERATORS, ids=lambda c: c.__name__)
def iterator_class(request):
    return request.param


class TestCoverage:
    @pytest.mark.parametrize("n,k", [(6, 3), (8, 2), (9, 4), (5, 5), (7, 1)])
    def test_visits_every_combination_once(self, iterator_class, n, k):
        seen = list(iterator_class(n, k))
        assert len(seen) == binomial(n, k)
        assert set(seen) == set(combinations(range(n), k))

    def test_k_zero_yields_empty_tuple(self, iterator_class):
        assert list(iterator_class(5, 0)) == [()]

    def test_k_equals_n(self, iterator_class):
        assert list(iterator_class(4, 4)) == [tuple(range(4))]

    def test_combinations_strictly_increasing(self, iterator_class):
        for combo in iterator_class(10, 4):
            assert all(combo[i] < combo[i + 1] for i in range(3))

    def test_invalid_parameters_rejected(self, iterator_class):
        with pytest.raises(ValueError):
            iterator_class(3, 4)
        with pytest.raises(ValueError):
            iterator_class(-1, 0)


class TestProtocol:
    def test_advance_returns_false_at_end(self, iterator_class):
        it = iterator_class(4, 2)
        count = 1
        while it.advance():
            count += 1
        assert count == 6
        assert it.advance() is False  # stays exhausted

    def test_reset_restarts_sequence(self, iterator_class):
        it = iterator_class(7, 3)
        first_pass = list(it)
        second_pass = list(it)
        assert first_pass == second_pass

    def test_state_restore_resumes_exactly(self, iterator_class):
        it = iterator_class(9, 3)
        for _ in range(10):
            it.advance()
        snapshot = it.state()
        tail_a = it.take(12)
        fresh = iterator_class(9, 3)
        fresh.restore(snapshot)
        tail_b = fresh.take(12)
        assert tail_a == tail_b

    def test_clone_is_independent(self, iterator_class):
        it = iterator_class(8, 3)
        it.advance()
        twin = it.clone()
        assert twin.current() == it.current()
        it.advance()
        assert twin.current() != it.current()

    def test_skip_to_matches_stepping(self, iterator_class):
        reference = list(iterator_class(8, 3))
        for rank in (0, 1, 7, 25, len(reference) - 1):
            it = iterator_class(8, 3)
            it.skip_to(rank)
            assert it.current() == reference[rank]

    def test_skip_to_negative_rejected(self, iterator_class):
        with pytest.raises((ValueError, IndexError)):
            iterator_class(8, 3).skip_to(-1)

    def test_take_stops_at_end(self, iterator_class):
        it = iterator_class(5, 2)
        assert len(it.take(100)) == 10


class TestCheckpoints:
    """The Chase-checkpoint parallelization scheme (paper Section 3.2.1)."""

    @pytest.mark.parametrize("threads", [1, 2, 3, 7])
    def test_checkpoints_partition_sequence(self, iterator_class, threads):
        n, k = 9, 3
        total = binomial(n, k)
        it = iterator_class(n, k)
        states = it.checkpoints(threads)
        assert len(states) == threads
        # Replaying each chunk end-to-end covers the sequence exactly.
        replayed = []
        boundaries = [(i * total) // threads for i in range(threads)] + [total]
        for idx, state in enumerate(states):
            worker = iterator_class(n, k)
            worker.restore(state)
            chunk = boundaries[idx + 1] - boundaries[idx]
            replayed.extend(worker.take(chunk))
        assert replayed == list(iterator_class(n, k))

    def test_checkpoints_even_workloads(self, iterator_class):
        total = binomial(9, 3)  # 84
        states = iterator_class(9, 3).checkpoints(7)
        sizes = []
        boundaries = [(i * total) // 7 for i in range(7)] + [total]
        for a, b in zip(boundaries, boundaries[1:]):
            sizes.append(b - a)
        assert max(sizes) - min(sizes) <= 1

    def test_checkpoint_count_validation(self, iterator_class):
        with pytest.raises(ValueError):
            iterator_class(5, 2).checkpoints(0)


class TestOrderings:
    def test_algorithm154_is_lexicographic(self):
        assert list(Algorithm154Iterator(6, 3)) == list(combinations(range(6), 3))

    def test_algorithm515_is_lexicographic(self):
        assert list(Algorithm515Iterator(6, 3)) == list(combinations(range(6), 3))

    def test_gosper_is_colex_mask_order(self):
        masks = []
        it = GosperIterator(6, 3)
        masks.append(it.current_mask())
        while it.advance():
            masks.append(it.current_mask())
        assert masks == sorted(masks)

    def test_algorithm382_is_minimal_change(self):
        seq = list(Algorithm382Iterator(9, 4))
        for a, b in zip(seq, seq[1:]):
            # Exactly one element swapped per transition (2 bits flip).
            assert len(set(a) ^ set(b)) == 2

    def test_chase382_is_minimal_change(self):
        seq = list(Chase382Iterator(9, 4))
        for a, b in zip(seq, seq[1:]):
            assert len(set(a) ^ set(b)) == 2

    def test_chase382_starts_at_top_block(self):
        # TWIDDLE's convention: the first combination is {n-k..n-1}.
        assert Chase382Iterator(9, 4).current() == (5, 6, 7, 8)

    def test_chase382_and_revolving_door_are_different_orders(self):
        a = list(Chase382Iterator(7, 3))
        b = list(Algorithm382Iterator(7, 3))
        assert set(a) == set(b)
        assert a != b  # same family, distinct Gray codes
