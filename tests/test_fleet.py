"""Fault-tolerant multi-device dispatch (repro.fleet).

Four layers of coverage: the replay machinery that re-dispatch rides on
(cursor push-back, order preservation); one device's health lifecycle
(kill, quarantine, probation, reinstatement); the dispatcher's
protocol-level invariants (byte equivalence with the single-device
engine, re-dispatch after a mid-search kill, grace shedding when the
whole fleet is dark, hedged stragglers); and the device-loss chaos storm
that exercises all of it at once.
"""

import time

import numpy as np
import pytest

from repro._bitutils import SEED_BITS, flip_bits
from repro.devices.flaky import DeviceFailure, FlakyDeviceModel
from repro.engines import build_engine, engine_target
from repro.fleet import (
    DEVICE_WEIGHTS,
    FleetDevice,
    FleetSearchEngine,
    run_device_loss_storm,
)
from repro.reliability.breaker import CircuitBreaker
from repro.runtime.executor import BatchSearchExecutor
from repro.sched import (
    SHED_NO_DEVICES,
    SHED_SHUTDOWN,
    RequestShed,
    SchedulerClosed,
    decompose_search,
)
from repro.sched.batcher import UnitCursor

RNG = np.random.default_rng(20260805)
BASE_SEED = RNG.bytes(32)


def _planted(distance, rng):
    positions = sorted(
        int(p) for p in rng.choice(SEED_BITS, size=distance, replace=False)
    )
    return flip_bits(BASE_SEED, positions)


# -- the replay machinery re-dispatch rides on --------------------------


class TestCursorReplay:
    @pytest.fixture
    def executor(self):
        return BatchSearchExecutor("sha1", batch_size=2048, cache=True)

    def _cursor(self, executor):
        """A cursor positioned past the single-row distance-0 probe."""
        cursor = UnitCursor(executor, decompose_search(1, chunk_ranks=2048))
        distance, probe = cursor.take(64)
        assert distance == 0 and probe.shape[0] == 1
        return cursor

    def test_pushed_back_slice_is_served_first_and_byte_identical(
        self, executor
    ):
        cursor = self._cursor(executor)
        distance, rows = cursor.take(64)
        cursor.push_back(distance, rows.copy())
        replay_distance, replayed = cursor.take(64)
        assert replay_distance == distance
        assert np.array_equal(replayed, rows)

    def test_reverse_push_back_restores_original_order(self, executor):
        """The dispatcher pushes a failed batch's slices back in reverse."""
        cursor = self._cursor(executor)
        first = cursor.take(32)
        second = cursor.take(32)
        for distance, rows in reversed([first, second]):
            cursor.push_back(distance, rows.copy())
        assert np.array_equal(cursor.take(32)[1], first[1])
        assert np.array_equal(cursor.take(32)[1], second[1])

    def test_oversized_replay_slice_is_split(self, executor):
        cursor = self._cursor(executor)
        distance, rows = cursor.take(90)
        cursor.push_back(distance, rows.copy())
        _d, head = cursor.take(30)
        assert head.shape[0] == 30
        _d, tail = cursor.take(90)
        assert tail.shape[0] == 60
        assert np.array_equal(np.vstack([head, tail]), rows)

    def test_pending_chunks_counts_replay(self, executor):
        cursor = self._cursor(executor)
        before = cursor.pending_chunks
        distance, rows = cursor.take(16)
        cursor.push_back(distance, rows)
        cursor.push_back(distance, rows)
        # The partially-served unit still counts once; each pushed-back
        # slice adds one replay chunk in front of it.
        assert cursor.pending_chunks == before + 2
        assert not cursor.exhausted


# -- flaky-device composability (satellite: from_token) -----------------


class TestFlakyFromToken:
    def test_flaky_token_schedules_failure_episodes(self):
        model = FlakyDeviceModel.from_token("flaky-gpu", seed=3)
        episodes = model.injector.episodes
        assert len(episodes) == 1
        lo, hi = episodes[0]
        assert hi - lo == 6  # default episode length

    def test_health_probe_peeks_without_consuming(self):
        model = FlakyDeviceModel.from_token(
            "flaky-cpu", seed=1, episode_length=4
        )
        lo, _hi = model.injector.episodes[0]
        calls_before = model.injector.calls
        assert model.health_probe() == (not lo <= calls_before < 4 + lo)
        assert model.injector.calls == calls_before

    def test_slow_token_throttles_but_never_fails(self):
        model = FlakyDeviceModel.from_token("slow-host", seed=2)
        assert model.injector.episodes == ()
        assert model.health_probe()
        assert all(model.injector.next() == "slow" for _ in range(10))

    def test_unknown_base_token_rejected(self):
        with pytest.raises(ValueError):
            FlakyDeviceModel.from_token("flaky-quantum")

    def test_registry_spec_composes_mixed_fleet(self):
        """Satellite acceptance: ``fleet:gpu,flaky-apu`` just works."""
        engine = build_engine("fleet:gpu,flaky-apu,hash=sha1,bs=2048")
        try:
            devices = engine.scheduler.devices
            assert [d.name for d in devices] == ["gpu-0", "flaky-apu-1"]
            assert devices[0].model is None
            assert devices[1].injector is not None
            assert devices[0].weight == DEVICE_WEIGHTS["gpu"]
            assert devices[1].weight == DEVICE_WEIGHTS["apu"]
        finally:
            engine.close()

    def test_unknown_device_token_rejected_at_build(self):
        with pytest.raises(ValueError):
            build_engine("fleet:warp-drive,host")


# -- one device's health lifecycle --------------------------------------


class TestFleetDevice:
    def _device(self, **kwargs):
        executor = BatchSearchExecutor("sha1", batch_size=1024)
        kwargs.setdefault(
            "breaker",
            CircuitBreaker(failure_threshold=2, recovery_seconds=0.05),
        )
        return FleetDevice("dev-0", executor.algo, **kwargs)

    def test_killed_device_fails_probes_into_quarantine(self):
        device = self._device()
        assert device.probe() and device.health == "healthy"
        device.kill()
        assert not device.probe()
        assert not device.probe()
        assert device.health == "quarantined"
        assert not device.placeable

    def test_revived_device_passes_probation_back_to_healthy(self):
        device = self._device()
        device.kill()
        device.probe()
        device.probe()
        device.revive()
        time.sleep(0.06)  # recovery_seconds elapses -> half-open
        assert device.health == "probation"
        assert device.probe()
        assert device.health == "healthy"

    def test_run_batch_on_killed_device_raises_and_counts(self):
        device = self._device()
        device.kill()
        with pytest.raises(DeviceFailure):
            device.run_batch(())
        assert device.failures == 1
        assert device.batches == 0

    def test_weight_validation(self):
        with pytest.raises(ValueError):
            self._device(weight=0.0)


# -- dispatcher invariants ----------------------------------------------


@pytest.fixture
def engine():
    engine = FleetSearchEngine(
        "host", "host", hash_name="sha1", batch_size=4096, chunk_ranks=8192
    )
    yield engine
    engine.close()


class TestFleetCore:
    def test_byte_identical_to_single_device_engine(self, engine):
        reference = build_engine("batch:sha1,bs=4096")
        rng = np.random.default_rng(7)
        for distance in (0, 1, 2):
            client_seed = _planted(distance, rng)
            target = engine_target(engine, client_seed)
            fleet_result = engine.search(BASE_SEED, target, 2)
            single = reference.search(BASE_SEED, target, 2)
            assert fleet_result.found and single.found
            assert fleet_result.seed == single.seed == client_seed
            assert fleet_result.distance == single.distance == distance

    def test_concurrent_results_stay_byte_identical(self, engine):
        rng = np.random.default_rng(11)
        requests = []
        for index in range(6):
            distance = index % 3
            client_seed = _planted(distance, rng)
            target = engine_target(engine, client_seed)
            requests.append((client_seed, distance, target))
        tickets = [
            engine.submit(BASE_SEED, target, 2, client_id=f"f{i}")
            for i, (_s, _d, target) in enumerate(requests)
        ]
        for ticket, (client_seed, distance, _t) in zip(tickets, requests):
            result = ticket.result(timeout=120)
            assert result.found
            assert result.seed == client_seed
            assert result.distance == distance

    def test_fleet_stats_attached_to_results(self, engine):
        client_seed = _planted(1, np.random.default_rng(3))
        target = engine_target(engine, client_seed)
        result = engine.search(BASE_SEED, target, 2)
        stats = result.fleet
        assert stats is not None
        names = {d.name for d in engine.scheduler.devices}
        assert stats.finder_device in names
        assert set(dict(stats.batches_by_device)) <= names
        assert sum(dict(stats.batches_by_device).values()) >= 1
        assert stats.redispatched_chunks == 0

    def test_kill_mid_search_redispatches_onto_survivor(self, engine):
        """The tentpole invariant: orphaned chunks replay, result intact."""
        absent = engine_target(engine, RNG.bytes(32))
        ticket = engine.submit(BASE_SEED, absent, 3, client_id="victim-req")
        victim = ticket.device.name
        time.sleep(0.05)  # let the device take some batches first
        engine.scheduler.kill_device(victim)
        result = ticket.result(timeout=120)
        # The exhaustive search still covered every candidate: a clean
        # not-found, not a lie manufactured by the dead device.
        assert result.found is False
        assert result.timed_out is False
        snapshot = engine.scheduler.snapshot()
        assert snapshot["redispatched_chunks"] > 0
        assert result.fleet.redispatched_chunks > 0
        assert snapshot["quarantines"] >= 1

    def test_whole_fleet_dark_sheds_with_typed_reason(self):
        engine = FleetSearchEngine(
            "host",
            "host",
            hash_name="sha1",
            batch_size=4096,
            heartbeat_seconds=0.01,
            no_device_grace=0.2,
        )
        try:
            absent = engine_target(engine, RNG.bytes(32))
            ticket = engine.submit(BASE_SEED, absent, 3, client_id="doomed")
            for device in engine.scheduler.devices:
                engine.scheduler.kill_device(device.name)
            with pytest.raises(RequestShed) as excinfo:
                ticket.result(timeout=30)
            assert excinfo.value.reason == SHED_NO_DEVICES
            assert (
                engine.scheduler.snapshot()["shed_reasons"][SHED_NO_DEVICES]
                >= 1
            )
        finally:
            engine.close(drain=False)

    def test_killed_device_is_quarantined_then_reinstated(self, engine):
        # The monitor thread spins up on first submission.
        client_seed = _planted(1, np.random.default_rng(5))
        assert engine.search(
            BASE_SEED, engine_target(engine, client_seed), 1
        ).found
        victim = engine.scheduler.devices[1].name
        engine.scheduler.kill_device(victim)
        deadline = time.perf_counter() + 10.0
        while time.perf_counter() < deadline:
            if engine.scheduler.device(victim).health == "quarantined":
                break
            time.sleep(0.01)
        assert engine.scheduler.device(victim).health == "quarantined"
        engine.scheduler.revive_device(victim)
        deadline = time.perf_counter() + 10.0
        while time.perf_counter() < deadline:
            if engine.scheduler.device(victim).health == "healthy":
                break
            time.sleep(0.01)
        assert engine.scheduler.device(victim).health == "healthy"
        snapshot = engine.scheduler.snapshot()
        assert snapshot["quarantines"] >= 1
        assert snapshot["reinstatements"] >= 1

    def test_admitted_implies_completed_or_shed(self, engine):
        rng = np.random.default_rng(23)
        tickets = []
        for index in range(6):
            client_seed = _planted(index % 3, rng)
            target = engine_target(engine, client_seed)
            budget = None if index % 2 == 0 else 30.0
            tickets.append(
                engine.submit(
                    BASE_SEED,
                    target,
                    2,
                    time_budget=budget,
                    client_id=f"mix-{index}",
                )
            )
        for ticket in tickets:
            try:
                ticket.result(timeout=120)
            except RequestShed as exc:
                assert exc.reason
        snapshot = engine.scheduler.snapshot()
        assert snapshot["admitted"] == len(tickets)
        assert snapshot["admitted"] == snapshot["completed"] + snapshot["shed"]
        assert snapshot["queue_depth"] == 0


class TestHedging:
    def test_idle_device_hedges_a_straggler_batch(self):
        """A throttled device's old batch gets duplicated onto the idle one."""
        engine = FleetSearchEngine(
            "host",
            "slow-host",
            hash_name="sha1",
            batch_size=4096,
            chunk_ranks=8192,
            slow_factor=30.0,
            hedge_factor=1.0,
            hedge_min_seconds=0.02,
        )
        try:
            filler_target = engine_target(engine, RNG.bytes(32))
            straggler_target = engine_target(engine, RNG.bytes(32))
            # Placement is least-loaded: the filler takes host-0, which
            # forces the straggler onto the throttled device. The filler
            # finishes quickly, idling host-0 next to a straggling batch.
            filler = engine.submit(
                BASE_SEED, filler_target, 2, client_id="filler"
            )
            straggler = engine.submit(
                BASE_SEED,
                straggler_target,
                3,
                time_budget=20.0,
                client_id="straggler",
            )
            assert straggler.device.name == "slow-host-1"
            assert filler.result(timeout=60).found is False
            result = straggler.result(timeout=120)
            assert result.found is False
            snapshot = engine.scheduler.snapshot()
        finally:
            engine.close(drain=False)
        assert snapshot["hedges_launched"] >= 1
        # Every race has exactly one winner and one loser: a winning
        # hedge also cancels its primary, so each counter is bounded by
        # the launches but their sum is not.
        assert snapshot["hedge_wins"] <= snapshot["hedges_launched"]
        assert snapshot["hedges_cancelled"] <= snapshot["hedges_launched"]
        assert result.fleet.hedged_batches >= 1


class TestFleetClose:
    def test_close_is_idempotent_and_rejects_new_work(self):
        engine = FleetSearchEngine("host", "host", hash_name="sha1")
        engine.close()
        engine.close()
        with pytest.raises(SchedulerClosed):
            engine.submit(BASE_SEED, b"\x00" * 20, 1)

    def test_close_drains_in_flight_requests(self):
        engine = FleetSearchEngine(
            "host", "host", hash_name="sha1", batch_size=4096
        )
        client_seed = _planted(1, np.random.default_rng(9))
        target = engine_target(engine, client_seed)
        ticket = engine.submit(BASE_SEED, target, 2, client_id="drain")
        engine.close(drain=True)
        result = ticket.result(timeout=1.0)  # already resolved
        assert result.found and result.seed == client_seed

    def test_close_without_drain_sheds_with_shutdown_reason(self):
        engine = FleetSearchEngine(
            "host", "host", hash_name="sha1", batch_size=4096
        )
        absent = engine_target(engine, RNG.bytes(32))
        tickets = [
            engine.submit(BASE_SEED, absent, 3, client_id=f"s{i}")
            for i in range(3)
        ]
        engine.close(drain=False)
        reasons = set()
        for ticket in tickets:
            assert ticket.done()
            try:
                ticket.result(timeout=1.0)
            except RequestShed as exc:
                reasons.add(exc.reason)
        assert reasons <= {SHED_SHUTDOWN}
        assert engine.scheduler.snapshot()["queue_depth"] == 0

    def test_describe_round_trips_the_spec(self):
        engine = FleetSearchEngine(
            "host", "host", hash_name="sha1", batch_size=4096
        )
        try:
            assert engine.describe().startswith("fleet:host,host")
            rebuilt = build_engine(engine.describe())
            try:
                assert rebuilt.batch_size == engine.batch_size
                assert len(rebuilt.scheduler.devices) == 2
            finally:
                rebuilt.close()
        finally:
            engine.close()

    def test_default_fleet_is_two_hosts(self):
        engine = FleetSearchEngine(hash_name="sha1")
        try:
            assert [d.name for d in engine.scheduler.devices] == [
                "host-0",
                "host-1",
            ]
        finally:
            engine.close()


# -- the chaos storm (satellite: device killed at 25%, revived at 75%) --


class TestDeviceLossStorm:
    def test_storm_passes_all_hard_invariants(self):
        report = run_device_loss_storm(seed=0, requests=8)
        assert report.passed, report.render()
        assert report.lost_requests == 0
        assert report.false_authentications == 0
        assert report.byte_mismatches == 0
        assert report.redispatched_chunks > 0
        assert report.quarantines >= 1
        assert report.victim_reinstated
        # Shed rate bounded: the storm's fleet keeps one healthy device
        # throughout, so nothing should be shed at all.
        assert report.shed == 0
        assert report.resolved == report.requests

    def test_storm_requires_a_survivor(self):
        with pytest.raises(ValueError):
            run_device_loss_storm(devices=("host",))

    def test_chaos_namespace_delegates(self):
        from repro.reliability.chaos import (
            run_device_loss_storm as delegated,
        )

        report = delegated(seed=1, requests=4, depths=(1, 2))
        assert report.lost_requests == 0
        assert report.false_authentications == 0
