"""Environmental PUF effects: temperature/voltage stress and aging."""

import numpy as np
import pytest

from repro.puf.environment import (
    EnvironmentalConditions,
    EnvironmentalPuf,
    stress_factor,
)
from repro.puf.model import SRAMPuf
from repro.puf.ternary import enroll_with_masking


class TestConditions:
    def test_nominal_factor_is_one(self):
        assert stress_factor(EnvironmentalConditions()) == pytest.approx(1.0)

    def test_heat_raises_stress(self):
        hot = stress_factor(EnvironmentalConditions(temperature_c=85.0))
        cold = stress_factor(EnvironmentalConditions(temperature_c=-20.0))
        assert hot > 1.3 and cold > 1.3

    def test_voltage_deviation_is_quadratic(self):
        small = stress_factor(EnvironmentalConditions(supply_voltage=1.05))
        large = stress_factor(EnvironmentalConditions(supply_voltage=1.10))
        assert (large - 1.0) == pytest.approx(4 * (small - 1.0), rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            EnvironmentalConditions(temperature_c=200.0)
        with pytest.raises(ValueError):
            EnvironmentalConditions(supply_voltage=0.2)
        with pytest.raises(ValueError):
            EnvironmentalConditions(age_years=-1.0)


class TestEnvironmentalPuf:
    @pytest.fixture
    def base_puf(self):
        return SRAMPuf(num_cells=4096, stable_error=0.002, seed=90)

    def _mean_distance(self, puf, reference, reads=12):
        return np.mean(
            [(puf.read(0, 4096).bits != reference).sum() for _ in range(reads)]
        )

    def test_nominal_matches_underlying(self, base_puf):
        wrapped = EnvironmentalPuf(base_puf, rng=np.random.default_rng(0))
        reference = base_puf.reference_bits(0, 4096)
        wrapped_d = self._mean_distance(wrapped, reference)
        raw_d = self._mean_distance(base_puf, reference)
        assert wrapped_d == pytest.approx(raw_d, rel=0.6)

    def test_heat_raises_distance(self, base_puf):
        reference = base_puf.reference_bits(0, 4096)
        hot = EnvironmentalPuf(
            base_puf,
            EnvironmentalConditions(temperature_c=105.0),
            rng=np.random.default_rng(1),
        )
        nominal = EnvironmentalPuf(base_puf, rng=np.random.default_rng(1))
        assert self._mean_distance(hot, reference) > self._mean_distance(
            nominal, reference
        )

    def test_aging_produces_persistent_drift(self, base_puf):
        aged = EnvironmentalPuf(
            base_puf,
            EnvironmentalConditions(age_years=10.0),
            aging_drift_per_year=0.002,
            rng=np.random.default_rng(2),
        )
        assert aged._drifted.sum() > 0
        # Drifted cells flip on every read (persistent, unlike noise).
        reference = base_puf.reference_bits(0, 4096)
        drifted = np.flatnonzero(aged._drifted[:4096])
        if drifted.size:
            flips = np.mean(
                [
                    (aged.read(0, 4096).bits[drifted] != reference[drifted]).mean()
                    for _ in range(6)
                ]
            )
            assert flips > 0.9

    def test_expected_distance_tracks_conditions(self, base_puf):
        mask = enroll_with_masking(base_puf, 0, 4096, reads=32)
        nominal = EnvironmentalPuf(base_puf, rng=np.random.default_rng(3))
        hot = EnvironmentalPuf(
            base_puf,
            EnvironmentalConditions(temperature_c=125.0),
            rng=np.random.default_rng(3),
        )
        assert hot.expected_distance(mask) > nominal.expected_distance(mask)

    def test_protocol_still_authenticates_when_hot(self, base_puf):
        """The RBC promise: environmental drift costs search time, not
        a protocol change — as long as d stays tractable."""
        from repro.core import (
            CertificateAuthority,
            RBCSaltedProtocol,
            RBCSearchService,
            RegistrationAuthority,
        )
        from repro.core.protocol import ClientDevice
        from repro.core.salting import HashChainSalt
        from repro.keygen.interface import get_keygen
        from repro.puf.image_db import EncryptedImageDatabase
        from repro.runtime.executor import BatchSearchExecutor

        mask = enroll_with_masking(
            base_puf, 0, 4096, reads=64, instability_threshold=0.02
        )
        hot_puf = EnvironmentalPuf(
            base_puf,
            EnvironmentalConditions(temperature_c=70.0),
            rng=np.random.default_rng(4),
        )
        authority = CertificateAuthority(
            search_service=RBCSearchService(
                BatchSearchExecutor("sha1", batch_size=16384), max_distance=3
            ),
            salt=HashChainSalt(),
            keygen=get_keygen("aes-128"),
            registration_authority=RegistrationAuthority(),
            image_db=EncryptedImageDatabase(b"environmental-ke"),
            hash_name="sha1",
        )
        authority.enroll("hot-dev", mask)
        client = ClientDevice("hot-dev", hot_puf, rng=np.random.default_rng(5))
        outcome = RBCSaltedProtocol(authority, max_attempts=3).authenticate(
            client, reference_mask=mask
        )
        assert outcome.authenticated
