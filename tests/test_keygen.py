"""Key-generation substrate: known-answer vectors and the interface."""

import numpy as np
import pytest

from repro.keygen.aes import AES128, aes128_ctr_keystream, aes128_decrypt_block, aes128_encrypt_block
from repro.keygen.chacha20 import chacha20_block, chacha20_encrypt, chacha20_keystream
from repro.keygen.interface import available_keygens, get_keygen
from repro.keygen.lwe import LWE_PRESETS, ToyModuleLWE
from repro.keygen.speck import Speck128, speck128_encrypt_block


class TestAES:
    def test_fips197_vector(self):
        key = bytes(range(16))
        plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
        expected = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        assert aes128_encrypt_block(key, plaintext) == expected

    def test_decrypt_inverts_encrypt(self, rng):
        key, block = rng.bytes(16), rng.bytes(16)
        assert aes128_decrypt_block(key, aes128_encrypt_block(key, block)) == block

    def test_block_size_validation(self):
        with pytest.raises(ValueError):
            aes128_encrypt_block(bytes(16), bytes(15))
        with pytest.raises(ValueError):
            AES128(bytes(15))

    def test_ctr_roundtrip(self, rng):
        cipher = AES128(rng.bytes(16))
        data = rng.bytes(100)
        nonce = rng.bytes(8)
        assert cipher.ctr_transform(cipher.ctr_transform(data, nonce), nonce) == data

    def test_ctr_nonce_separation(self, rng):
        cipher = AES128(rng.bytes(16))
        data = rng.bytes(64)
        assert cipher.ctr_transform(data, b"A" * 8) != cipher.ctr_transform(data, b"B" * 8)

    def test_ctr_keystream_length(self):
        assert len(aes128_ctr_keystream(bytes(16), bytes(8), 33)) == 33


class TestChaCha20:
    def test_rfc8439_block_vector(self):
        key = bytes(range(32))
        nonce = bytes.fromhex("000000090000004a00000000")
        expected = bytes.fromhex(
            "10f1e7e4d13b5915500fdd1fa32071c4"
            "c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2"
            "b5129cd1de164eb9cbd083e8a2503c4e"
        )
        assert chacha20_block(key, 1, nonce) == expected

    def test_encrypt_is_involution(self, rng):
        key, nonce, data = rng.bytes(32), rng.bytes(12), rng.bytes(130)
        assert chacha20_encrypt(key, nonce, chacha20_encrypt(key, nonce, data)) == data

    def test_keystream_counter_advances(self):
        key, nonce = bytes(32), bytes(12)
        long_stream = chacha20_keystream(key, nonce, 128, counter=1)
        second_block = chacha20_block(key, 2, nonce)
        assert long_stream[64:] == second_block

    def test_key_nonce_validation(self):
        with pytest.raises(ValueError):
            chacha20_block(bytes(31), 0, bytes(12))
        with pytest.raises(ValueError):
            chacha20_block(bytes(32), 0, bytes(11))


class TestSpeck:
    def test_speck_paper_vector(self):
        key = bytes.fromhex("0f0e0d0c0b0a09080706050403020100")
        plaintext = bytes.fromhex("6c617669757165207469206564616d20")
        expected = bytes.fromhex("a65d9851797832657860fedf5c570d18")
        assert speck128_encrypt_block(key, plaintext) == expected

    def test_decrypt_inverts_encrypt(self, rng):
        cipher = Speck128(rng.bytes(16))
        block = rng.bytes(16)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    def test_validation(self):
        with pytest.raises(ValueError):
            Speck128(bytes(8))
        with pytest.raises(ValueError):
            Speck128(bytes(16)).encrypt_block(bytes(8))


class TestToyLWE:
    def test_deterministic(self):
        lwe = ToyModuleLWE("light")
        assert lwe.public_key(b"\x05" * 32) == lwe.public_key(b"\x05" * 32)

    def test_seed_sensitivity(self):
        lwe = ToyModuleLWE("light")
        assert lwe.public_key(b"\x05" * 32) != lwe.public_key(b"\x06" * 32)

    def test_presets_exist(self):
        for preset in LWE_PRESETS:
            ToyModuleLWE(preset)
        with pytest.raises(KeyError):
            ToyModuleLWE("kyber")

    def test_public_key_size_scales_with_rank(self):
        light = ToyModuleLWE("light").public_key(b"\x01" * 32)
        dil = ToyModuleLWE("dilithium3").public_key(b"\x01" * 32)
        assert len(dil) == 3 * len(light)  # rank 6 vs rank 2

    def test_keypair_lwe_relation_residual_is_small(self):
        # b - A*s = e must be bounded by eta (the injected noise).
        lwe = ToyModuleLWE("light")
        seed = b"\x09" * 32
        public, secret = lwe.keypair(seed)
        a = lwe._expand_matrix(seed)
        recomputed = np.zeros_like(public)
        for i in range(lwe.rank):
            acc = np.zeros(lwe.degree, dtype=np.int64)
            for j in range(lwe.rank):
                acc = (acc + lwe._polymul(a[i, j], secret[j])) % lwe.modulus
            recomputed[i] = acc
        error = (public - recomputed) % lwe.modulus
        centered = np.where(error > lwe.modulus // 2, error - lwe.modulus, error)
        assert np.abs(centered).max() <= lwe.eta

    def test_seed_length_validation(self):
        with pytest.raises(ValueError):
            ToyModuleLWE("light").public_key(b"short")


class TestKeyGeneratorInterface:
    def test_registry_contents(self):
        names = available_keygens()
        for expected in ("aes-128", "chacha20", "speck-128", "lightsaber", "saber", "dilithium3"):
            assert expected in names

    def test_unknown_keygen(self):
        with pytest.raises(KeyError):
            get_keygen("rsa")

    @pytest.mark.parametrize("name", ["aes-128", "chacha20", "speck-128"])
    def test_cipher_keygens_deterministic(self, name, rng):
        gen = get_keygen(name)
        seed = rng.bytes(32)
        assert gen.public_key(seed) == gen.public_key(seed)

    def test_seed_length_enforced(self):
        with pytest.raises(ValueError):
            get_keygen("aes-128").public_key(b"\x00" * 16)

    def test_pqc_costs_dominate_ciphers(self):
        # The Table 7 premise: lattice keygen orders of magnitude above ciphers.
        aes = get_keygen("aes-128").relative_cost
        saber = get_keygen("lightsaber").relative_cost
        dilithium = get_keygen("dilithium3").relative_cost
        assert saber > 50 * aes
        assert dilithium > saber
