"""Integration tests across subsystems, including model-vs-runtime
cross-validation at reduced scale (the honesty checks of DESIGN.md §5)."""

import numpy as np
import pytest

from repro import quick_setup
from repro._bitutils import flip_bits
from repro.core.protocol import RBCSaltedProtocol
from repro.devices import APUModel, CPUModel, GPUModel
from repro.hashes.registry import get_hash
from repro.runtime.executor import BatchSearchExecutor


class TestEndToEndScenarios:
    def test_many_clients_one_authority(self):
        """A fleet of clients enrolled in one CA, each authenticating."""
        from repro.core import (
            CertificateAuthority,
            RBCSearchService,
            RegistrationAuthority,
        )
        from repro.core.protocol import ClientDevice
        from repro.core.salting import HashChainSalt
        from repro.keygen.interface import get_keygen
        from repro.puf.image_db import EncryptedImageDatabase
        from repro.puf.model import SRAMPuf
        from repro.puf.ternary import enroll_with_masking

        authority = CertificateAuthority(
            search_service=RBCSearchService(
                BatchSearchExecutor("sha1", batch_size=16384), max_distance=2
            ),
            salt=HashChainSalt(),
            keygen=get_keygen("aes-128"),
            registration_authority=RegistrationAuthority(),
            image_db=EncryptedImageDatabase(b"fleet-master-key"),
            hash_name="sha1",
        )
        protocol = RBCSaltedProtocol(authority)
        outcomes = []
        for i in range(4):
            puf = SRAMPuf(num_cells=2048, stable_error=0.001, seed=100 + i)
            mask = enroll_with_masking(puf, 0, 2048, reads=64,
                                       instability_threshold=0.02)
            client_id = f"device-{i}"
            authority.enroll(client_id, mask)
            client = ClientDevice(client_id, puf, noise_target_distance=1,
                                  rng=np.random.default_rng(i))
            outcomes.append(protocol.authenticate(client, reference_mask=mask))
        assert all(o.authenticated for o in outcomes)
        # Each client got its own key registered.
        keys = {authority.registration_authority.lookup(f"device-{i}") for i in range(4)}
        assert len(keys) == 4

    def test_one_time_keys_rotate_between_sessions(self, small_authority):
        authority, client, mask = small_authority
        protocol = RBCSaltedProtocol(authority)
        first = protocol.authenticate(client, reference_mask=mask)
        second = protocol.authenticate(client, reference_mask=mask)
        assert first.authenticated and second.authenticated
        # The PUF is erratic, so back-to-back sessions usually recover a
        # different noisy seed -> different key; at minimum the RA count
        # reflects both updates.
        assert authority.registration_authority.update_count("client-0") == 2

    def test_quick_setup_defaults(self):
        authority, client, mask = quick_setup(seed=21)
        outcome = RBCSaltedProtocol(authority).authenticate(client, reference_mask=mask)
        assert outcome.authenticated

    def test_hash_swap_is_transparent(self):
        """The RBC-SALTED selling point: changing the hash (or keygen) is
        a configuration change, not a protocol rewrite."""
        for hash_name in ("sha1", "sha256", "sha3-256"):
            authority, client, mask = quick_setup(seed=31, hash_name=hash_name)
            outcome = RBCSaltedProtocol(authority).authenticate(
                client, reference_mask=mask
            )
            assert outcome.authenticated, hash_name

    def test_keygen_swap_is_transparent(self):
        for keygen_name in ("aes-128", "speck-128", "chacha20", "lightsaber"):
            authority, client, mask = quick_setup(seed=41, keygen_name=keygen_name)
            outcome = RBCSaltedProtocol(authority).authenticate(
                client, reference_mask=mask
            )
            assert outcome.authenticated, keygen_name


class TestModelRuntimeCrossValidation:
    """The device models and the real executor must agree on structure."""

    def test_hash_cost_ordering_matches_reality(self):
        """Modeled SHA-3 > SHA-256 > SHA-1 per-hash cost must hold in the
        real batch kernels on this host."""
        rates = {}
        for name in ("sha1", "sha256", "sha3-256"):
            rates[name] = BatchSearchExecutor(name).throughput_probe(20000)
        assert rates["sha1"] > rates["sha256"] > rates["sha3-256"]

    def test_modeled_and_real_sha3_sha1_ratio_same_direction(self):
        gpu = GPUModel()
        modeled = gpu.search_time("sha3-256", 5) / gpu.search_time("sha1", 5)
        real = (
            BatchSearchExecutor("sha1").throughput_probe(20000)
            / BatchSearchExecutor("sha3-256").throughput_probe(20000)
        )
        # Both say SHA-3 is multiple times costlier (exact factors differ
        # between an A100 and NumPy lanes).
        assert modeled > 1.5 and real > 1.5

    def test_shell_sizes_match_executor_counts(self, base_seed, rng):
        """The model's seed accounting equals what the executor hashes."""
        from repro.combinatorics.binomial import exhaustive_seed_count
        from repro.hashes.sha1 import sha1

        executor = BatchSearchExecutor("sha1", batch_size=8192)
        result = executor.search(base_seed, sha1(rng.bytes(32)), 2)
        assert result.seeds_hashed == exhaustive_seed_count(2)

    def test_average_case_statistics(self, rng):
        """Planted uniformly at d=2, the mean seeds-hashed across trials
        approaches the Equation 3 average a(2)."""
        from repro.combinatorics.binomial import average_seed_count
        from repro.hashes.sha1 import sha1

        base = rng.bytes(32)
        executor = BatchSearchExecutor("sha1", batch_size=257)
        counts = []
        for _ in range(30):
            positions = rng.choice(256, size=2, replace=False)
            client = flip_bits(base, positions.tolist())
            result = executor.search(base, sha1(client), 2)
            assert result.found
            counts.append(result.seeds_hashed)
        mean = float(np.mean(counts))
        expected = average_seed_count(2)
        # Batched checking quantizes to 257-seed blocks; allow 25%.
        assert expected * 0.5 < mean < expected * 1.6

    def test_devices_agree_on_threshold_planning(self):
        """All three models agree with complexity.tractable_distance."""
        from repro.core.complexity import tractable_distance

        for model in (GPUModel(), APUModel(), CPUModel()):
            t5 = model.search_time("sha3-256", 5)
            rate = 8987138113 / t5
            planned = tractable_distance(rate, 20.0)
            meets = t5 <= 20.0
            assert (planned >= 5) == meets
