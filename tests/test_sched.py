"""The deadline-aware continuous-batching scheduler (repro.sched).

Three layers of coverage: the pure pieces (work-unit decomposition and
the scheduling policy) as plain unit tests; the scheduler core's
invariants (everything admitted is completed or shed with a reason,
byte-identical equivalence with the unscheduled engine, deadline
shedding, deterministic close); and the serving integration
(scheduler-backed ``ConcurrentCAServer`` with shed/preemption counters).
"""

import threading
import time
from types import SimpleNamespace

import numpy as np
import pytest

from repro._bitutils import SEED_BITS, flip_bits
from repro.combinatorics.binomial import binomial
from repro.engines import TelemetryHooks, build_engine, engine_target
from repro.sched import (
    DEEP_LANE,
    EXPRESS_LANE,
    SHALLOW_LANE,
    SHED_DEADLINE_UNMEETABLE,
    SHED_SATURATED,
    SHED_SHUTDOWN,
    PolicyConfig,
    RequestShed,
    SchedulerClosed,
    SchedulingPolicy,
    WorkUnit,
    decompose_search,
    expected_work,
)
from repro.sched.engine import ScheduledSearchEngine

RNG = np.random.default_rng(20260805)
BASE_SEED = RNG.bytes(32)


class TestWorkUnits:
    def test_distance_zero_is_single_probe(self):
        assert decompose_search(0) == [WorkUnit(0, 0, 1)]

    def test_chunks_cover_every_shell_exactly(self):
        for max_distance in (1, 2, 3):
            units = decompose_search(max_distance, chunk_ranks=1 << 12)
            for distance in range(1, max_distance + 1):
                shell = [u for u in units if u.distance == distance]
                # Contiguous, non-overlapping, complete cover.
                assert shell[0].lo == 0
                assert shell[-1].hi == binomial(SEED_BITS, distance)
                for prev, cur in zip(shell, shell[1:]):
                    assert prev.hi == cur.lo
                assert all(u.cost > 0 for u in shell)

    def test_execution_order_is_protocol_order(self):
        units = decompose_search(2, chunk_ranks=1 << 10)
        keys = [(u.distance, u.lo) for u in units]
        assert keys == sorted(keys)

    def test_chunk_geometry_is_client_independent(self):
        # Identical chunks for any two requests at the same depth — the
        # property that makes mask plans shared across clients.
        assert decompose_search(2) == decompose_search(2)

    def test_expected_work_matches_table1(self):
        assert expected_work(0) == 1
        assert expected_work(1) == 1 + 256
        assert expected_work(2) == 1 + 256 + binomial(256, 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            decompose_search(-1)
        with pytest.raises(ValueError):
            decompose_search(1, chunk_ranks=0)
        with pytest.raises(ValueError):
            expected_work(-1)


def _req(seq, lane, deadline=None, remaining=1000):
    return SimpleNamespace(
        seq=seq, lane=lane, deadline=deadline, remaining_work=remaining
    )


class TestPolicy:
    def test_lane_assignment(self):
        policy = SchedulingPolicy()
        assert policy.lane_of(1, None) == SHALLOW_LANE
        assert policy.lane_of(2, None) == SHALLOW_LANE
        assert policy.lane_of(3, None) == DEEP_LANE
        assert policy.lane_of(4, 2.5) == EXPRESS_LANE

    def test_admission_saturation(self):
        policy = SchedulingPolicy()
        reason = policy.admission_shed_reason(
            queue_depth=8, max_queue=8, deadline_seconds=None, throughput=None
        )
        assert reason == SHED_SATURATED

    def test_admission_deadline_unmeetable(self):
        policy = SchedulingPolicy()
        # At 10 H/s even the d<=1 min-cover (257 candidates) takes ~26s.
        reason = policy.admission_shed_reason(
            queue_depth=0, max_queue=8, deadline_seconds=1.0, throughput=10.0
        )
        assert reason == SHED_DEADLINE_UNMEETABLE

    def test_admission_is_conservative_without_throughput(self):
        policy = SchedulingPolicy()
        # No observed throughput yet: admit, let run-time expiry decide.
        assert (
            policy.admission_shed_reason(
                queue_depth=0,
                max_queue=8,
                deadline_seconds=1e-9,
                throughput=None,
            )
            is None
        )

    def test_edf_between_lanes(self):
        policy = SchedulingPolicy()
        runnable = [
            _req(0, DEEP_LANE, remaining=10**9),
            _req(1, EXPRESS_LANE, deadline=5.0),
            _req(2, SHALLOW_LANE, remaining=100),
        ]
        order = policy.lane_order(runnable, recent_lanes=[])
        assert order[0] == EXPRESS_LANE
        # Without deadlines, cheapest lane outranks the deep backlog.
        assert order.index(SHALLOW_LANE) < order.index(DEEP_LANE)

    def test_shortest_expected_work_within_lane(self):
        policy = SchedulingPolicy()
        runnable = [
            _req(0, SHALLOW_LANE, remaining=500),
            _req(1, SHALLOW_LANE, remaining=100),
            _req(2, SHALLOW_LANE, remaining=100),
        ]
        picked = policy.pick(runnable, recent_lanes=[])
        assert picked.remaining_work == 100
        assert picked.seq == 1  # FIFO tie-break

    def test_fairness_cap_rotates_hogging_lane(self):
        policy = SchedulingPolicy(PolicyConfig(fairness_cap=0.5))
        runnable = [
            _req(0, SHALLOW_LANE, remaining=100),
            _req(1, DEEP_LANE, remaining=10**9),
        ]
        # Shallow took every recent batch while deep waited: rotate.
        order = policy.lane_order(runnable, recent_lanes=[SHALLOW_LANE] * 10)
        assert order[0] == DEEP_LANE
        # Under the cap, preference is restored.
        order = policy.lane_order(
            runnable, recent_lanes=[SHALLOW_LANE, DEEP_LANE, DEEP_LANE]
        )
        assert order[0] == SHALLOW_LANE

    def test_fill_order_prefers_deadlines_then_cheap_work(self):
        policy = SchedulingPolicy()
        primary = _req(0, DEEP_LANE, remaining=10**9)
        urgent = _req(1, EXPRESS_LANE, deadline=1.0)
        cheap = _req(2, SHALLOW_LANE, remaining=10)
        costly = _req(3, SHALLOW_LANE, remaining=10**6)
        order = policy.fill_order([costly, cheap, urgent, primary], primary)
        assert order == [primary, urgent, cheap, costly]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PolicyConfig(fairness_cap=0.0)
        with pytest.raises(ValueError):
            PolicyConfig(deep_distance=0)
        with pytest.raises(ValueError):
            PolicyConfig(fairness_window=0)
        with pytest.raises(ValueError):
            PolicyConfig(shed_slack=0.0)
        with pytest.raises(ValueError):
            PolicyConfig(aging_seconds=0.0)
        assert PolicyConfig(aging_seconds=None).aging_seconds is None


def _aging_req(seq, lane, submitted_at, deadline=None, remaining=1000):
    return SimpleNamespace(
        seq=seq,
        lane=lane,
        deadline=deadline,
        remaining_work=remaining,
        submitted_at=submitted_at,
        aged=False,
    )


class TestAging:
    def test_promotion_past_threshold_is_one_way(self):
        policy = SchedulingPolicy(PolicyConfig(aging_seconds=10.0))
        old = _aging_req(0, DEEP_LANE, submitted_at=0.0)
        fresh = _aging_req(1, SHALLOW_LANE, submitted_at=95.0)
        assert policy.apply_aging([old, fresh], now=100.0) == 1
        assert old.aged and old.lane == EXPRESS_LANE
        assert not fresh.aged and fresh.lane == SHALLOW_LANE
        # One-way: a promoted request is never re-promoted (or demoted).
        assert policy.apply_aging([old, fresh], now=200.0) == 1
        assert fresh.aged  # now past the threshold too
        assert policy.apply_aging([old, fresh], now=300.0) == 0

    def test_aging_disabled_with_none(self):
        policy = SchedulingPolicy(PolicyConfig(aging_seconds=None))
        old = _aging_req(0, DEEP_LANE, submitted_at=0.0)
        assert policy.apply_aging([old], now=1e9) == 0
        assert not old.aged

    def test_aged_lane_outranks_deadlines(self):
        policy = SchedulingPolicy(PolicyConfig(aging_seconds=1.0))
        starving = _aging_req(
            0, DEEP_LANE, submitted_at=0.0, remaining=10**9
        )
        policy.apply_aging([starving], now=5.0)
        urgent = _aging_req(
            1, EXPRESS_LANE, submitted_at=4.9, deadline=0.001
        )
        order = policy.lane_order([urgent, starving], recent_lanes=[])
        # Both ride the express lane now; the aged key puts the lane
        # first regardless of the rotation history.
        assert order[0] == EXPRESS_LANE
        picked = policy.pick([urgent, starving], recent_lanes=[])
        assert picked is starving

    def test_fill_order_prefers_aged_requests(self):
        policy = SchedulingPolicy(PolicyConfig(aging_seconds=1.0))
        starving = _aging_req(
            0, DEEP_LANE, submitted_at=0.0, remaining=10**9
        )
        policy.apply_aging([starving], now=5.0)
        cheap = _aging_req(1, SHALLOW_LANE, submitted_at=4.9, remaining=10)
        primary = _aging_req(2, SHALLOW_LANE, submitted_at=4.9, remaining=50)
        order = policy.fill_order([cheap, starving, primary], primary)
        assert order == [primary, starving, cheap]

    def test_starving_deep_request_bounded_waits_under_pressure(self):
        """Satellite: with the fairness rotation disabled (cap=1.0), only
        aging saves a deep request from starving under constant shallow
        pressure — and it must get service within a bounded wait."""
        engine = ScheduledSearchEngine(
            "sha1",
            batch_size=4096,
            chunk_ranks=8192,
            fairness_cap=1.0,
            aging_seconds=0.3,
        )
        try:
            absent = engine_target(engine, RNG.bytes(32))
            # d=4 (~174M seeds) cannot be swept inside the 2 s budget
            # even with every mask plan already warm from earlier tests,
            # so the request always runs to its budget after promotion.
            deep = engine.submit(
                BASE_SEED, absent, 4, time_budget=2.0, client_id="starved"
            )
            rng = np.random.default_rng(31)
            start = time.perf_counter()
            # Constant shallow pressure until the promotion lands (the
            # deep request would starve forever without it at cap=1.0).
            while (
                time.perf_counter() - start < 20.0
                and engine.scheduler.snapshot()["aged_promotions"] == 0
            ):
                tickets = [
                    engine.submit(
                        BASE_SEED,
                        engine_target(engine, _planted(1, rng)),
                        1,
                        client_id=f"pressure-{i}",
                    )
                    for i in range(3)
                ]
                for ticket in tickets:
                    assert ticket.result(timeout=60).found
            result = deep.result(timeout=60)
            snapshot = engine.scheduler.snapshot()
        finally:
            engine.close(drain=False)
        assert snapshot["aged_promotions"] >= 1
        # Promoted into express and served to its budget: a bounded
        # wait, not starvation.
        assert result.scheduling.lane == EXPRESS_LANE
        assert result.timed_out and not result.found


@pytest.fixture
def engine():
    engine = ScheduledSearchEngine("sha1", batch_size=4096, chunk_ranks=8192)
    yield engine
    engine.close()


def _planted(distance, rng):
    positions = sorted(
        int(p) for p in rng.choice(SEED_BITS, size=distance, replace=False)
    )
    return flip_bits(BASE_SEED, positions)


class TestSchedulerCore:
    def test_byte_identical_to_unscheduled_engine(self, engine):
        reference = build_engine("batch:sha1,bs=4096")
        rng = np.random.default_rng(7)
        for distance in (0, 1, 2):
            client_seed = _planted(distance, rng)
            target = engine_target(engine, client_seed)
            scheduled = engine.search(BASE_SEED, target, 2)
            unscheduled = reference.search(BASE_SEED, target, 2)
            assert scheduled.found and unscheduled.found
            assert scheduled.seed == unscheduled.seed == client_seed
            assert scheduled.distance == unscheduled.distance == distance

    def test_concurrent_results_stay_byte_identical(self, engine):
        rng = np.random.default_rng(11)
        requests = []
        for index in range(6):
            distance = (index % 3)
            client_seed = _planted(distance, rng)
            target = engine_target(engine, client_seed)
            requests.append((client_seed, distance, target))
        tickets = [
            engine.submit(BASE_SEED, target, 2, client_id=f"c{i}")
            for i, (_seed, _d, target) in enumerate(requests)
        ]
        for ticket, (client_seed, distance, _t) in zip(tickets, requests):
            result = ticket.result(timeout=120)
            assert result.found
            assert result.seed == client_seed
            assert result.distance == distance

    def test_admitted_implies_completed_or_shed(self, engine):
        """The core accounting invariant, exercised under concurrency."""
        rng = np.random.default_rng(23)
        tickets = []
        admission_sheds = 0
        for index in range(8):
            client_seed = _planted(index % 3, rng)
            target = engine_target(engine, client_seed)
            # A mix: generous budgets, zero budgets, tight deadlines.
            budget = None if index % 2 == 0 else (0 if index == 3 else 30.0)
            deadline = 0.001 if index == 5 else None
            try:
                tickets.append(
                    engine.submit(
                        BASE_SEED,
                        target,
                        2,
                        time_budget=budget,
                        deadline_seconds=deadline,
                        client_id=f"mix-{index}",
                    )
                )
            except RequestShed as exc:
                # Shed at the door (unmeetable deadline once throughput
                # has been observed) — still a counted, reasoned shed.
                assert exc.reason
                admission_sheds += 1
        settled = 0
        for ticket in tickets:
            try:
                ticket.result(timeout=120)
                settled += 1
            except RequestShed as exc:
                assert exc.reason
                settled += 1
        assert settled == len(tickets)
        snapshot = engine.scheduler.snapshot()
        assert snapshot["admitted"] == len(tickets)
        assert (
            snapshot["admitted"]
            == snapshot["completed"] + snapshot["shed"] - admission_sheds
        )
        assert snapshot["queue_depth"] == 0

    def test_zero_budget_times_out_uniformly(self, engine):
        absent = engine_target(engine, RNG.bytes(32))
        result = engine.search(BASE_SEED, absent, 2, time_budget=0)
        assert result.found is False
        assert result.timed_out is True
        assert result.seed is None and result.distance is None

    def test_deadline_shed_at_admission(self, engine):
        engine.scheduler.prime_throughput(1e6)
        absent = engine_target(engine, RNG.bytes(32))
        with pytest.raises(RequestShed) as excinfo:
            engine.submit(
                BASE_SEED, absent, 2, deadline_seconds=1e-7, client_id="hopeless"
            )
        assert excinfo.value.reason == SHED_DEADLINE_UNMEETABLE
        assert engine.scheduler.snapshot()["shed_reasons"] == {
            SHED_DEADLINE_UNMEETABLE: 1
        }

    def test_saturation_shed(self):
        engine = ScheduledSearchEngine(
            "sha1", batch_size=4096, chunk_ranks=8192, max_queue=1
        )
        try:
            absent = engine_target(engine, RNG.bytes(32))
            first = engine.submit(BASE_SEED, absent, 2, client_id="a")
            try:
                with pytest.raises(RequestShed) as excinfo:
                    # Race-free: admission is checked under the lock, and
                    # the first request cannot finish instantly (d=2 on
                    # sha1 takes well over the submit-to-submit gap).
                    engine.submit(BASE_SEED, absent, 2, client_id="b")
                assert excinfo.value.reason == SHED_SATURATED
            finally:
                first.result(timeout=120)
        finally:
            engine.close()

    def test_scheduling_stats_attached(self, engine):
        client_seed = _planted(1, np.random.default_rng(3))
        target = engine_target(engine, client_seed)
        ticket = engine.submit(
            BASE_SEED, target, 2, deadline_seconds=60.0, client_id="stats"
        )
        result = ticket.result(timeout=120)
        stats = result.scheduling
        assert stats is not None
        assert stats.lane == EXPRESS_LANE
        assert stats.deadline_seconds == 60.0
        assert stats.queue_seconds >= 0.0
        assert stats.service_seconds > 0.0
        assert stats.batches >= 1
        assert stats.chunks_total >= stats.chunks_run >= 1

    def test_on_schedule_hook_fires(self):
        hooks = TelemetryHooks()
        engine = ScheduledSearchEngine(
            "sha1", batch_size=4096, chunk_ranks=8192, hooks=hooks
        )
        try:
            client_seed = _planted(1, np.random.default_rng(5))
            target = engine_target(engine, client_seed)
            assert engine.search(BASE_SEED, target, 1).found
        finally:
            engine.close()
        snapshot = hooks.snapshot()
        assert snapshot["scheduled"] == 1
        assert snapshot["batches"] >= 1

    def test_describe_round_trips_the_spec(self, engine):
        assert engine.describe().startswith("sched:sha1")
        rebuilt = build_engine(engine.describe())
        try:
            assert rebuilt.batch_size == engine.batch_size
        finally:
            rebuilt.close()


class TestSchedulerClose:
    def test_close_is_idempotent_and_rejects_new_work(self):
        engine = ScheduledSearchEngine("sha1", batch_size=4096)
        engine.close()
        engine.close()
        with pytest.raises(SchedulerClosed):
            engine.submit(BASE_SEED, b"\x00" * 20, 1)

    def test_close_drains_in_flight_requests(self):
        engine = ScheduledSearchEngine("sha1", batch_size=4096, chunk_ranks=8192)
        client_seed = _planted(1, np.random.default_rng(9))
        target = engine_target(engine, client_seed)
        ticket = engine.submit(BASE_SEED, target, 2, client_id="drain")
        engine.close(drain=True)
        result = ticket.result(timeout=1.0)  # already resolved
        assert result.found and result.seed == client_seed

    def test_close_without_drain_sheds_with_shutdown_reason(self):
        engine = ScheduledSearchEngine("sha1", batch_size=4096, chunk_ranks=8192)
        absent = engine_target(engine, RNG.bytes(32))
        tickets = [
            engine.submit(BASE_SEED, absent, 2, client_id=f"s{i}")
            for i in range(3)
        ]
        engine.close(drain=False)
        reasons = set()
        for ticket in tickets:
            assert ticket.done()
            try:
                ticket.result(timeout=1.0)
            except RequestShed as exc:
                reasons.add(exc.reason)
        # At least the queued tail was shed at shutdown (the request
        # holding the device may have completed first).
        assert reasons <= {SHED_SHUTDOWN}
        assert engine.scheduler.snapshot()["queue_depth"] == 0


class TestFairness:
    def test_deep_search_cannot_monopolize_the_device(self):
        """With a deep straggler in flight, shallow work still lands."""
        engine = ScheduledSearchEngine(
            "sha1", batch_size=4096, chunk_ranks=8192
        )
        try:
            absent = engine_target(engine, RNG.bytes(32))
            deep = engine.submit(
                BASE_SEED, absent, 3, time_budget=30.0, client_id="deep"
            )
            # Let the deep search take the device first.
            time.sleep(0.2)
            rng = np.random.default_rng(13)
            t0 = time.perf_counter()
            shallow_tickets = [
                engine.submit(
                    BASE_SEED,
                    engine_target(engine, _planted(1, rng)),
                    1,
                    client_id=f"shallow-{i}",
                )
                for i in range(3)
            ]
            for ticket in shallow_tickets:
                assert ticket.result(timeout=60).found
            shallow_wall = time.perf_counter() - t0
            snapshot = engine.scheduler.snapshot()
        finally:
            engine.close(drain=False)
        # The d=1 searches finished while d=3 still had hours of work
        # queued — generous margin so slow CI cannot flake this.
        assert shallow_wall < 20.0
        assert snapshot["batches_by_lane"].get("shallow", 0) >= 1
        assert snapshot["batches_by_lane"].get("deep", 0) >= 1
        assert snapshot["preempted"] >= 1


class TestServingIntegration:
    @pytest.fixture
    def fleet(self):
        from repro.core import (
            CertificateAuthority,
            RBCSearchService,
            RegistrationAuthority,
        )
        from repro.core.protocol import ClientDevice
        from repro.core.salting import HashChainSalt
        from repro.keygen.interface import get_keygen
        from repro.puf.image_db import EncryptedImageDatabase
        from repro.puf.model import SRAMPuf
        from repro.puf.ternary import enroll_with_masking
        from repro.runtime.executor import BatchSearchExecutor

        authority = CertificateAuthority(
            search_service=RBCSearchService(
                BatchSearchExecutor("sha1", batch_size=8192), max_distance=1
            ),
            salt=HashChainSalt(),
            keygen=get_keygen("aes-128"),
            registration_authority=RegistrationAuthority(),
            image_db=EncryptedImageDatabase(b"sched-master-key"),
            hash_name="sha1",
        )
        clients = []
        for i in range(4):
            puf = SRAMPuf(num_cells=2048, stable_error=0.001, seed=4100 + i)
            mask = enroll_with_masking(
                puf, 0, 2048, reads=48, instability_threshold=0.02
            )
            client_id = f"sc{i}"
            authority.enroll(client_id, mask)
            device = ClientDevice(
                client_id, puf, noise_target_distance=1,
                rng=np.random.default_rng(100 + i),
            )
            clients.append((client_id, device, mask))
        return authority, clients

    def test_scheduler_backed_server_authenticates_fleet(self, fleet):
        from repro.net.concurrent import ConcurrentCAServer

        authority, clients = fleet
        scheduler = ScheduledSearchEngine("sha1", batch_size=8192)
        with ConcurrentCAServer(authority, scheduler=scheduler) as server:
            futures = []
            for client_id, device, mask in clients:
                challenge = authority.issue_challenge(client_id)
                digest = device.respond(challenge, reference_mask=mask)
                futures.append(server.submit(client_id, digest))
            results = [f.result(timeout=120) for f in futures]
        assert all(r.authenticated for r in results)
        assert all(r.public_key for r in results)
        snapshot = server.metrics.snapshot()
        assert snapshot["completed"] == len(clients)
        assert snapshot["authenticated"] == len(clients)
        assert snapshot["queue_depth_peak"] >= 1
        # The RA really saw the keys (issued from the dispatcher path).
        assert all(
            client_id in authority.registration_authority
            for client_id, _d, _m in clients
        )

    def test_scheduler_backed_server_sheds_observably(self, fleet):
        from repro.net.concurrent import ConcurrentCAServer

        authority, clients = fleet
        scheduler = ScheduledSearchEngine("sha1", batch_size=8192)
        scheduler.scheduler.prime_throughput(1e6)
        with ConcurrentCAServer(authority, scheduler=scheduler) as server:
            client_id = clients[0][0]
            with pytest.raises(RequestShed):
                server.submit(client_id, b"\x00" * 20, deadline_seconds=1e-7)
            assert server.metrics.snapshot()["shed"] == 1
            # The shed request's client is not stuck "in flight".
            assert client_id not in server._in_flight_clients

    def test_server_close_settles_scheduled_futures(self, fleet):
        from repro.net.concurrent import ConcurrentCAServer

        authority, clients = fleet
        scheduler = ScheduledSearchEngine("sha1", batch_size=8192)
        server = ConcurrentCAServer(authority, scheduler=scheduler)
        client_id, device, mask = clients[0]
        challenge = authority.issue_challenge(client_id)
        digest = device.respond(challenge, reference_mask=mask)
        future = server.submit(client_id, digest)
        server.close(wait=True)
        assert future.done()
        assert future.result(timeout=1.0).authenticated

    def test_deadline_rides_the_wire(self, fleet):
        """Satellite (a): TTL field survives the framed round trip."""
        from repro.net.messages import DigestSubmission

        submission = DigestSubmission(
            client_id="sc0", digest=b"\x01" * 20, deadline_seconds=2.5
        )
        decoded = DigestSubmission.from_bytes(submission.to_bytes())
        assert decoded.deadline_seconds == pytest.approx(2.5)
        assert decoded.digest == submission.digest

    def test_deadline_field_is_backward_tolerant(self):
        import json
        import zlib

        from repro.net.messages import DigestSubmission

        # A frame from a sender predating the deadline field.
        body = {"client_id": "old", "digest": "00" * 20,
                "type": "digest_submission"}
        canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
        body["crc"] = f"{zlib.crc32(canonical.encode()):08x}"
        raw = json.dumps(body, sort_keys=True, separators=(",", ":")).encode()
        decoded = DigestSubmission.from_bytes(raw)
        assert decoded.deadline_seconds is None

    def test_fifo_mode_clamps_budget_and_stamps_deadline(self, fleet):
        authority, clients = fleet
        client_id, device, mask = clients[0]
        challenge = authority.issue_challenge(client_id)
        digest = device.respond(challenge, reference_mask=mask)
        result = authority.run_search(client_id, digest, deadline_seconds=15.0)
        assert result.scheduling is not None
        assert result.scheduling.deadline_seconds == 15.0

    def test_network_client_attaches_deadline(self, fleet):
        from repro.core.protocol import ClientDevice  # noqa: F401
        from repro.net.client import NetworkClient
        from repro.net.server import CAServer
        from repro.net.transport import InProcessTransport

        authority, clients = fleet
        client_id, device, mask = clients[0]
        network_client = NetworkClient(
            device,
            InProcessTransport(),
            reference_mask=mask,
            deadline_seconds=18.0,
        )
        result = network_client.authenticate(CAServer(authority))
        assert result.authenticated
        last = authority._last_result
        assert last.scheduling is not None
        assert last.scheduling.deadline_seconds == 18.0
