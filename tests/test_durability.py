"""Crash-consistent durability: WAL framing, recovery, nonce safety.

Covers the CRC-framed write-ahead log (append/scan round-trips, the
torn-tail-vs-mid-log-corruption discrimination, a fuzz sweep that
truncates and bit-flips the log at arbitrary byte offsets), atomic
checkpoints with version-monotonic replay, the CTR nonce-reuse tripwire
in the encrypted store, the :class:`DurableImageStore` kill-9 contract
(acknowledged enrollments survive a reopen at their version or higher),
and the sharded directory's durable construction + anti-entropy healing.
"""

from __future__ import annotations

import json
import zlib

import numpy as np
import pytest

from repro.directory import ShardedEnrollmentDirectory
from repro.durability import (
    DurableImageStore,
    EnrollRecord,
    FsyncPolicy,
    ShardLog,
    WalCorrupt,
    WriteAheadLog,
    replay_into,
    scan_wal,
)
from repro.durability.wal import WAL_HEADER, WAL_MAGIC, encode_wal_record
from repro.puf.image_db import EncryptedImageDatabase, NonceReuseError
from repro.puf.ternary import TernaryMask

KEY = b"durability-key!!"


def synthetic_mask(seed: int, cells: int = 256) -> TernaryMask:
    rng = np.random.default_rng(seed)
    return TernaryMask(
        address=0,
        usable=rng.random(cells) > 0.03,
        reference=(rng.random(cells) > 0.5),
        instability=np.zeros(cells),
    )


class TestFsyncPolicy:
    def test_parse_tokens(self):
        assert FsyncPolicy.parse("always").mode == "always"
        assert FsyncPolicy.parse("none").mode == "none"
        policy = FsyncPolicy.parse("interval:0.2")
        assert policy.mode == "interval"
        assert policy.interval_seconds == 0.2
        assert FsyncPolicy.parse("interval").describe().startswith("interval:")

    def test_bad_tokens_are_rejected(self):
        with pytest.raises(ValueError):
            FsyncPolicy.parse("sometimes")
        with pytest.raises(ValueError):
            FsyncPolicy.parse("interval:-1")


class TestWalScan:
    def _write(self, path, payloads):
        with WriteAheadLog(path, fsync=FsyncPolicy(mode="none")) as wal:
            for payload in payloads:
                wal.append(payload)

    def test_round_trip(self, tmp_path):
        path = tmp_path / "wal.log"
        payloads = [f"record-{i}".encode() * (i + 1) for i in range(20)]
        self._write(path, payloads)
        scan = scan_wal(path)
        assert scan.records == payloads
        assert not scan.tail_was_torn

    def test_missing_file_scans_empty(self, tmp_path):
        scan = scan_wal(tmp_path / "absent.log")
        assert scan.records == []
        assert scan.valid_bytes == 0

    def test_torn_tail_is_truncated_not_fatal(self, tmp_path):
        path = tmp_path / "wal.log"
        payloads = [b"alpha" * 10, b"beta" * 10, b"gamma" * 10]
        self._write(path, payloads)
        data = path.read_bytes()
        # Cut mid-way through the final record's payload.
        path.write_bytes(data[: len(data) - 7])
        scan = scan_wal(path)
        assert scan.records == payloads[:2]
        assert scan.tail_was_torn

    def test_final_record_crc_damage_is_torn(self, tmp_path):
        path = tmp_path / "wal.log"
        payloads = [b"alpha" * 10, b"omega" * 10]
        self._write(path, payloads)
        data = bytearray(path.read_bytes())
        data[-3] ^= 0x40  # garble the last record's payload
        path.write_bytes(bytes(data))
        scan = scan_wal(path)
        assert scan.records == payloads[:1]
        assert scan.tail_was_torn

    def test_midlog_crc_damage_is_corruption(self, tmp_path):
        path = tmp_path / "wal.log"
        self._write(path, [b"alpha" * 10, b"omega" * 10])
        data = bytearray(path.read_bytes())
        data[WAL_HEADER.size + 2] ^= 0x01  # inside the *first* payload
        path.write_bytes(bytes(data))
        with pytest.raises(WalCorrupt):
            scan_wal(path)

    def test_bad_magic_is_corruption(self, tmp_path):
        path = tmp_path / "wal.log"
        frame = encode_wal_record(b"fine")
        path.write_bytes(b"XX" + frame[2:] + frame)
        with pytest.raises(WalCorrupt):
            scan_wal(path)

    def test_implausible_length_is_corruption(self, tmp_path):
        path = tmp_path / "wal.log"
        header = WAL_HEADER.pack(WAL_MAGIC, 1 << 30, zlib.crc32(b""))
        path.write_bytes(header + b"\x00" * 64 + encode_wal_record(b"x"))
        with pytest.raises(WalCorrupt):
            scan_wal(path)

    def test_fuzz_truncate_at_every_offset(self, tmp_path):
        """A crash can stop the final write at ANY byte. Recovery must
        always yield a strict prefix of the appended records."""
        path = tmp_path / "wal.log"
        payloads = [f"payload-{i}".encode() * 3 for i in range(6)]
        self._write(path, payloads)
        pristine = path.read_bytes()
        for cut in range(len(pristine)):
            path.write_bytes(pristine[:cut])
            scan = scan_wal(path)
            assert scan.records == payloads[: len(scan.records)]
            assert scan.valid_bytes + scan.torn_bytes == cut

    def test_fuzz_bitflip_at_every_offset(self, tmp_path):
        """A single flipped bit anywhere yields a prefix or WalCorrupt —
        never a fabricated or reordered record."""
        path = tmp_path / "wal.log"
        payloads = [f"payload-{i}".encode() * 3 for i in range(4)]
        self._write(path, payloads)
        pristine = path.read_bytes()
        for offset in range(len(pristine)):
            mutated = bytearray(pristine)
            mutated[offset] ^= 0x10
            path.write_bytes(bytes(mutated))
            try:
                scan = scan_wal(path)
            except WalCorrupt:
                continue
            for got, expected in zip(scan.records, payloads):
                assert got == expected or offset > 0  # prefix only
            assert len(scan.records) <= len(payloads)
            # Whatever survived must be a prefix of the true history,
            # except possibly the record containing the flipped byte —
            # and that one can only survive if the flip was in its own
            # *header CRC field* making it torn, never silently wrong.
            for index, record in enumerate(scan.records):
                assert record == payloads[index]


class TestCheckpointAndReplay:
    def test_checkpoint_absorbs_and_resets_wal(self, tmp_path):
        log = ShardLog(tmp_path / "shard", fsync=FsyncPolicy(mode="none"))
        store = EncryptedImageDatabase(KEY)
        store.enroll("alice", synthetic_mask(1))
        blob, version = store.export_record("alice")
        log.append("alice", version, blob)
        log.checkpoint(store.snapshot())
        result = log.recover()
        assert result.checkpoint is not None
        assert result.records == []  # WAL was reset by the checkpoint

        restored = EncryptedImageDatabase(KEY)
        restored.restore(result.checkpoint)
        assert restored.version_of("alice") == version
        log.close()

    def test_crash_between_rename_and_reset_is_idempotent(self, tmp_path):
        """Replaying records a newer checkpoint already absorbed must
        not regress the version counter."""
        store = EncryptedImageDatabase(KEY)
        store.enroll("alice", synthetic_mask(1))
        v1 = store.export_record("alice")
        store.enroll("alice", synthetic_mask(2))  # re-enroll bumps version
        v2 = store.export_record("alice")

        restored = EncryptedImageDatabase(KEY)
        restored.restore(store.snapshot())  # checkpoint holds v2
        stale = [EnrollRecord("alice", v1[1], v1[0])]
        replay_into(restored, stale)
        assert restored.version_of("alice") == v2[1]

    def test_replay_applies_newest_version(self, tmp_path):
        store = EncryptedImageDatabase(KEY)
        store.enroll("bob", synthetic_mask(3))
        b1, n1 = store.export_record("bob")
        store.enroll("bob", synthetic_mask(4))
        b2, n2 = store.export_record("bob")
        fresh = EncryptedImageDatabase(KEY)
        applied = replay_into(
            fresh, [EnrollRecord("bob", n1, b1), EnrollRecord("bob", n2, b2)]
        )
        assert applied == 2
        assert fresh.version_of("bob") == n2


class TestNonceReuseTripwire:
    def test_registered_version_blocks_reuse(self):
        store = EncryptedImageDatabase(KEY)
        store.register_used_version("alice", 3)
        with pytest.raises(NonceReuseError):
            # Enrolling from scratch would assign versions <= 3, whose
            # CTR keystreams already protect durable ciphertext.
            store.enroll("alice", synthetic_mask(1))
        assert store.nonce_reuse_trips == 1

    def test_normal_reenrollment_never_trips(self):
        store = EncryptedImageDatabase(KEY)
        for seed in range(5):
            store.enroll("alice", synthetic_mask(seed))
        assert store.nonce_reuse_trips == 0

    def test_recovery_raises_the_floor(self, tmp_path):
        first = DurableImageStore(tmp_path / "d", KEY, fsync="none")
        first.enroll("alice", synthetic_mask(1))
        first.enroll("alice", synthetic_mask(2))
        version = first.version_of("alice")
        first.close()

        reopened = DurableImageStore(tmp_path / "d", KEY, fsync="none")
        # The floor covers every durable version: the next enrollment
        # must mint a strictly newer nonce, never reuse one.
        reopened.enroll("alice", synthetic_mask(3))
        assert reopened.version_of("alice") == version + 1
        assert reopened.nonce_reuse_trips == 0
        reopened.close()


class TestDurableImageStore:
    def test_acknowledged_enrollments_survive_reopen(self, tmp_path):
        store = DurableImageStore(tmp_path / "db", KEY, fsync="always")
        masks = {f"client-{i}": synthetic_mask(i) for i in range(8)}
        for client_id, mask in masks.items():
            store.enroll(client_id, mask)
        versions = {c: store.version_of(c) for c in masks}
        store.close()  # no checkpoint: recovery must come from the WAL

        recovered = DurableImageStore(tmp_path / "db", KEY, fsync="always")
        assert recovered.recovery.recovered_records == len(masks)
        for client_id, mask in masks.items():
            assert recovered.version_of(client_id) >= versions[client_id]
            got = recovered.lookup(client_id)
            np.testing.assert_array_equal(got.reference, mask.reference)
        recovered.close()

    def test_torn_tail_loses_only_the_unacknowledged_append(self, tmp_path):
        store = DurableImageStore(tmp_path / "db", KEY, fsync="none")
        store.enroll("alice", synthetic_mask(1))
        store.enroll("bob", synthetic_mask(2))
        store.close()
        wal_path = tmp_path / "db" / "wal.log"
        data = wal_path.read_bytes()
        wal_path.write_bytes(data[:-5])  # tear bob's record

        recovered = DurableImageStore(tmp_path / "db", KEY, fsync="none")
        assert "alice" in recovered
        assert "bob" not in recovered
        assert recovered.recovery.torn_bytes_dropped > 0
        recovered.close()

    def test_midlog_damage_refuses_to_open(self, tmp_path):
        store = DurableImageStore(tmp_path / "db", KEY, fsync="none")
        store.enroll("alice", synthetic_mask(1))
        store.enroll("bob", synthetic_mask(2))
        store.close()
        wal_path = tmp_path / "db" / "wal.log"
        data = bytearray(wal_path.read_bytes())
        data[WAL_HEADER.size + 4] ^= 0x01  # inside alice's payload
        wal_path.write_bytes(bytes(data))
        with pytest.raises(WalCorrupt):
            DurableImageStore(tmp_path / "db", KEY, fsync="none")

    def test_auto_checkpoint_compacts_the_wal(self, tmp_path):
        store = DurableImageStore(
            tmp_path / "db", KEY, fsync="none", checkpoint_every=4
        )
        for i in range(6):
            store.enroll(f"client-{i}", synthetic_mask(i))
        counters = store.counters()
        assert counters["checkpoints"] == 1
        store.close()
        recovered = DurableImageStore(tmp_path / "db", KEY, fsync="none")
        # 4 absorbed by the checkpoint, 2 replayed from the WAL.
        assert recovered.recovery.recovered_records == 2
        assert len(recovered) == 6
        recovered.close()

    def test_counters_surface_durability_telemetry(self, tmp_path):
        store = DurableImageStore(tmp_path / "db", KEY, fsync="always")
        store.enroll("alice", synthetic_mask(1))
        counters = store.counters()
        assert counters["wal_appends"] == 1
        assert counters["wal_fsyncs"] >= 1
        assert counters["nonce_reuse_trips"] == 0
        assert counters["recovery_seconds"] >= 0.0
        store.close()


class TestDurableDirectory:
    def _directory(self, tmp_path, **kwargs):
        return ShardedEnrollmentDirectory(
            master_key=KEY,
            shards=4,
            replication=2,
            data_dir=str(tmp_path / "dir"),
            fsync="none",
            **kwargs,
        )

    def test_restart_preserves_enrollments_and_versions(self, tmp_path):
        directory = self._directory(tmp_path)
        clients = {f"client-{i}": synthetic_mask(i) for i in range(10)}
        for client_id, mask in clients.items():
            directory.enroll(client_id, mask)
            directory.enroll(client_id, mask)  # bump to version 1
        versions = {c: directory.version_of(c) for c in clients}
        directory.checkpoint_all()
        directory.close()

        restarted = self._directory(tmp_path)
        for client_id, mask in clients.items():
            assert restarted.version_of(client_id) >= versions[client_id]
            got = restarted.lookup(client_id)
            np.testing.assert_array_equal(got.reference, mask.reference)
        assert restarted.snapshot()["durable"] is True
        restarted.close()

    def test_anti_entropy_heals_a_wiped_shard(self, tmp_path):
        import shutil

        directory = self._directory(tmp_path)
        for i in range(12):
            directory.enroll(f"client-{i}", synthetic_mask(i))
        directory.checkpoint_all()
        directory.close()
        shutil.rmtree(tmp_path / "dir" / "shard-01")

        healed = self._directory(tmp_path)
        report = healed.anti_entropy()
        assert report["keys_checked"] == 12
        assert report["unreachable"] == 0
        # Every client is still readable at its authoritative version.
        for i in range(12):
            assert healed.version_of(f"client-{i}") >= 0
            healed.lookup(f"client-{i}")
        # A second sweep finds nothing left to repair.
        assert healed.anti_entropy()["repaired"] == 0
        healed.close()
