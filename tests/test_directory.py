"""Sharded enrollment directory: ring, cache, shards, quorum, degraded mode."""

import threading
import time

import numpy as np
import pytest

from repro.directory import (
    ClientNotEnrolled,
    ConsistentHashRing,
    DirectoryPrefetcher,
    DirectoryUnavailable,
    HotCache,
    ShardDown,
    ShardedEnrollmentDirectory,
    ShardStore,
)
from repro.puf.ternary import TernaryMask
from repro.reliability.breaker import CircuitOpenError
from repro.reliability.faults import FaultPlan, FaultSpec

KEY = b"directory-key-!!"


def synthetic_mask(seed: int, cells: int = 512) -> TernaryMask:
    rng = np.random.default_rng(seed)
    return TernaryMask(
        address=0,
        usable=rng.random(cells) > 0.03,
        reference=(rng.random(cells) > 0.5),
        instability=np.zeros(cells),
    )


class TestConsistentHashRing:
    def test_replicas_are_distinct_and_stable(self):
        ring = ConsistentHashRing([f"s{i}" for i in range(8)])
        for key in ("alice", "bob", "carol"):
            replicas = ring.replicas_for(key, 3)
            assert len(replicas) == len(set(replicas)) == 3
            assert replicas == ring.replicas_for(key, 3)

    def test_primary_is_first_replica(self):
        ring = ConsistentHashRing(["a", "b", "c"])
        assert ring.primary_for("key") == ring.replicas_for("key", 2)[0]

    def test_membership_change_moves_few_keys(self):
        keys = [f"client-{i}" for i in range(400)]
        before = ConsistentHashRing([f"s{i}" for i in range(8)])
        after = ConsistentHashRing([f"s{i}" for i in range(9)])
        moved = sum(
            1 for k in keys if before.primary_for(k) != after.primary_for(k)
        )
        # Consistent hashing: roughly 1/9 of keys move, never a reshuffle.
        assert moved < len(keys) // 3

    def test_keys_spread_over_shards(self):
        ring = ConsistentHashRing([f"s{i}" for i in range(8)])
        owners = {ring.primary_for(f"client-{i}") for i in range(200)}
        assert len(owners) == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            ConsistentHashRing([])
        with pytest.raises(ValueError):
            ConsistentHashRing(["a", "a"])
        with pytest.raises(ValueError):
            ConsistentHashRing(["a"], vnodes=0)
        with pytest.raises(ValueError):
            ConsistentHashRing(["a", "b"]).replicas_for("k", 3)


class TestHotCache:
    def test_hit_miss_and_recency(self):
        cache = HotCache(2)
        assert cache.get("a") is None
        cache.put("a", "va", 0)
        cache.put("b", "vb", 0)
        assert cache.get("a") == ("va", 0)  # refreshes recency
        cache.put("c", "vc", 0)             # evicts b, the LRU
        assert cache.get("b") is None
        assert cache.get("a") == ("va", 0)
        snap = cache.snapshot()
        assert snap["evictions"] == 1
        assert snap["hits"] == 2 and snap["misses"] == 2

    def test_speculative_insert_fills_spare_capacity_only(self):
        cache = HotCache(2)
        assert cache.put_speculative("a", "va", 0)
        cache.put("b", "vb", 0)
        # Full: the prefetch is dropped, never evicting demand entries.
        assert not cache.put_speculative("c", "vc", 0)
        assert cache.get("a") == ("va", 0)
        assert cache.get("b") == ("vb", 0)
        assert cache.get("c") is None
        snap = cache.snapshot()
        assert snap["prefetch_inserts"] == 1
        assert snap["prefetch_dropped"] == 1

    def test_speculative_entries_are_first_eviction_candidates(self):
        cache = HotCache(2)
        cache.put("hot", "vh", 0)
        cache.put_speculative("spec", "vs", 0)
        cache.put("new", "vn", 0)  # evicts the speculative entry
        assert cache.get("spec") is None
        assert cache.peek("hot") is not None

    def test_invalidate_counts_stale(self):
        cache = HotCache(2)
        cache.put("a", "va", 3)
        assert cache.invalidate("a")
        assert not cache.invalidate("a")
        assert cache.snapshot()["stale_invalidations"] == 1

    def test_peek_touches_nothing(self):
        cache = HotCache(2)
        cache.put("a", "va", 0)
        assert cache.peek("a") == ("va", 0)
        assert cache.peek("zzz") is None
        snap = cache.snapshot()
        assert snap["hits"] == 0 and snap["misses"] == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            HotCache(0)


class TestShardStore:
    def test_read_write_roundtrip_stays_encrypted(self):
        shard = ShardStore("s0", KEY)
        codec = ShardStore("codec", KEY).store
        mask = synthetic_mask(1)
        blob = codec.encrypt_record("alice", mask, 0)
        shard.install("alice", blob, 0)
        held = shard.read("alice")
        assert held == (blob, 0)
        assert shard.version_of("alice") == 0
        assert shard.read("nobody") is None  # clean miss, not a failure

    def test_kill_then_breaker_opens_then_revive_recloses(self):
        shard = ShardStore("s0", KEY)
        shard.kill()
        # ShardDown failures accumulate until the breaker trips open.
        for _ in range(shard.breaker.failure_threshold):
            with pytest.raises(ShardDown):
                shard.read("alice")
        with pytest.raises(CircuitOpenError):
            shard.read("alice")
        shard.revive()
        time.sleep(shard.breaker.recovery_seconds + 0.02)
        # The half-open probe succeeds and re-admits the shard.
        assert shard.read("alice") is None
        assert shard.breaker.state == "closed"

    def test_missing_record_does_not_trip_breaker(self):
        shard = ShardStore("s0", KEY)
        for _ in range(shard.breaker.failure_threshold + 2):
            assert shard.read("ghost") is None
        assert shard.breaker.state == "closed"

    def test_clone_snapshot_transfers_ciphertext(self):
        source = ShardStore("s0", KEY)
        mask = synthetic_mask(2)
        blob = source.store.encrypt_record("alice", mask, 4)
        source.install("alice", blob, 4)
        replica = ShardStore("s1", KEY)
        replica.restore_snapshot(source.clone_snapshot())
        assert replica.read("alice") == (blob, 4)


class TestShardedEnrollmentDirectory:
    def _directory(self, **kwargs) -> ShardedEnrollmentDirectory:
        kwargs.setdefault("shards", 6)
        kwargs.setdefault("replication", 2)
        kwargs.setdefault("cache_capacity", 8)
        return ShardedEnrollmentDirectory(master_key=KEY, **kwargs)

    def test_enroll_lookup_roundtrip(self):
        directory = self._directory()
        mask = synthetic_mask(3)
        directory.enroll("alice", mask)
        restored = directory.lookup("alice")
        assert (restored.reference == mask.reference).all()
        assert (restored.usable == mask.usable).all()
        assert "alice" in directory and len(directory) == 1
        assert directory.version_of("alice") == 0

    def test_unknown_client_raises_typed_keyerror(self):
        directory = self._directory()
        with pytest.raises(ClientNotEnrolled):
            directory.lookup("mallory")
        with pytest.raises(KeyError):  # ClientNotEnrolled is a KeyError
            directory.lookup("mallory")

    def test_replicas_hold_identical_ciphertext(self):
        directory = self._directory(replication=3)
        directory.enroll("alice", synthetic_mask(4))
        replicas = directory.replicas_for("alice")
        held = [directory.shard(name).read("alice") for name in replicas]
        assert len(held) == 3
        assert all(record == held[0] for record in held)

    def test_second_lookup_is_a_hot_hit(self):
        directory = self._directory()
        directory.enroll("alice", synthetic_mask(5))
        _mask, cold = directory.lookup_with_stats("alice")
        _mask, hot = directory.lookup_with_stats("alice")
        assert not cold.hot_hit and cold.source == "primary"
        assert hot.hot_hit and hot.source == "hot-cache"
        assert directory.hot_hits == 1

    def test_re_enroll_invalidates_cache_and_bumps_version(self):
        directory = self._directory()
        mask = synthetic_mask(6)
        directory.enroll("alice", mask)
        directory.lookup("alice")  # warm the cache at version 0
        directory.enroll("alice", mask)
        assert directory.version_of("alice") == 1
        _mask, stats = directory.lookup_with_stats("alice")
        assert not stats.hot_hit  # the stale entry was not served

    def test_failover_with_exactly_r_minus_1_live_replicas(self):
        directory = self._directory()
        directory.enroll("alice", synthetic_mask(7))
        primary, backup = directory.replicas_for("alice")
        directory.kill_shard(primary)
        directory.drop_hot_caches()
        _mask, stats = directory.lookup_with_stats("alice")
        assert stats.source == "replica"
        assert stats.shard == backup
        assert directory.failovers == 1

    def test_whole_replica_set_down_is_typed_unavailable(self):
        directory = self._directory()
        directory.enroll("alice", synthetic_mask(8))
        for name in directory.replicas_for("alice"):
            directory.kill_shard(name)
        directory.drop_hot_caches()
        with pytest.raises(DirectoryUnavailable):
            directory.lookup("alice")
        assert directory.unavailable_lookups == 1

    def test_cached_entry_still_serves_while_replicas_down(self):
        directory = self._directory()
        directory.enroll("alice", synthetic_mask(9))
        directory.lookup("alice")  # cache it
        for name in directory.replicas_for("alice"):
            directory.kill_shard(name)
        _mask, stats = directory.lookup_with_stats("alice")
        assert stats.hot_hit  # the cache outlives the shard loss

    def test_read_repair_after_shard_rejoin(self):
        directory = self._directory()
        mask = synthetic_mask(10)
        directory.enroll("alice", mask)
        primary, backup = directory.replicas_for("alice")
        directory.kill_shard(backup)
        directory.enroll("alice", mask)  # version 1 misses the dead backup
        directory.revive_shard(backup)
        directory.drop_hot_caches()
        _mask, stats = directory.lookup_with_stats("alice")
        assert stats.read_repairs == 1
        assert directory.shard(backup).version_of("alice") == 1
        # Healed: the next read repairs nothing.
        directory.drop_hot_caches()
        _mask, stats = directory.lookup_with_stats("alice")
        assert stats.read_repairs == 0

    def test_stale_replica_is_never_served(self):
        directory = self._directory()
        mask = synthetic_mask(11)
        directory.enroll("alice", mask)
        primary, backup = directory.replicas_for("alice")
        directory.kill_shard(backup)
        directory.enroll("alice", mask)  # backup now stale at version 0
        directory.revive_shard(backup)
        directory.kill_shard(primary)  # only the stale copy is live
        directory.drop_hot_caches()
        # Wait out the backup's breaker so its stale copy is reachable.
        time.sleep(directory.shard(backup).breaker.recovery_seconds + 0.02)
        with pytest.raises(DirectoryUnavailable):
            directory.lookup("alice")

    def test_transient_read_timeouts_are_retried(self):
        # Enroll cleanly, then attach an always-timeout injector: every
        # replica exhausts its retry budget, the lookup degrades typed,
        # and the retry counter proves backoff was attempted.
        directory = self._directory(backoff_seconds=0.0001)
        directory.enroll("alice", synthetic_mask(12))
        directory.drop_hot_caches()
        plan = FaultPlan(FaultSpec(shard_timeout_rate=1.0), seed=3)
        for index, name in enumerate(directory.shard_names):
            directory.shard(name).injector = plan.shard_injector(index)
        with pytest.raises(DirectoryUnavailable):
            directory.lookup("alice")
        assert directory.retries > 0

    def test_transient_write_timeouts_get_the_same_retry_budget(self):
        # Every install times out too: enrollment degrades typed after
        # retrying each replica instead of silently half-writing.
        directory = self._directory(
            fault_plan=FaultPlan(FaultSpec(shard_timeout_rate=1.0), seed=3),
            backoff_seconds=0.0001,
        )
        with pytest.raises(DirectoryUnavailable):
            directory.enroll("alice", synthetic_mask(12))
        assert directory.retries > 0

    def test_enroll_requires_one_live_replica(self):
        directory = self._directory()
        directory.enroll("alice", synthetic_mask(13))
        for name in directory.replicas_for("alice"):
            directory.kill_shard(name)
        with pytest.raises(DirectoryUnavailable):
            directory.enroll("alice", synthetic_mask(13))

    def test_prefetch_loads_and_full_cache_falls_back_cleanly(self):
        directory = self._directory(cache_capacity=1)
        client_ids = [f"client-{i}" for i in range(24)]
        for index, client_id in enumerate(client_ids):
            directory.enroll(client_id, synthetic_mask(100 + index))
        report = directory.prefetch(client_ids)
        assert report["requested"] == 24
        assert report["loaded"] >= 1
        # capacity 1 per shard: most speculative inserts are dropped...
        assert report["dropped"] > 0
        # ...and every dropped key still serves through the quorum read.
        for client_id in client_ids:
            assert directory.lookup(client_id) is not None

    def test_prefetch_counts_unknown_and_unavailable(self):
        directory = self._directory()
        directory.enroll("alice", synthetic_mask(14))
        for name in directory.replicas_for("alice"):
            directory.kill_shard(name)
        report = directory.prefetch(["alice", "ghost"])
        assert report["unavailable"] == 1
        assert report["unknown"] == 1

    def test_snapshot_shape(self):
        directory = self._directory()
        directory.enroll("alice", synthetic_mask(15))
        directory.lookup("alice")
        snap = directory.snapshot()
        assert snap["clients"] == 1
        assert snap["quorum_reads"] == 1
        assert set(snap["shards_detail"]) == set(directory.shard_names)
        assert snap["cache"]["misses"] >= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardedEnrollmentDirectory(master_key=KEY, shards=0)
        with pytest.raises(ValueError):
            ShardedEnrollmentDirectory(master_key=KEY, shards=2, replication=3)
        with pytest.raises(ValueError):
            ShardedEnrollmentDirectory(
                master_key=KEY, shards=4, replication=2, read_quorum=3
            )


class TestDirectoryPrefetcher:
    def test_notes_coalesce_into_batches(self):
        directory = ShardedEnrollmentDirectory(master_key=KEY, shards=4)
        for index in range(8):
            directory.enroll(f"client-{index}", synthetic_mask(200 + index))
        prefetcher = DirectoryPrefetcher(directory, max_batch=16)
        try:
            for index in range(8):
                prefetcher.note(f"client-{index}")
            assert prefetcher.flush(timeout=5.0)
            snap = prefetcher.snapshot()
            assert snap["ids_noted"] == 8
            assert snap["batches"] >= 1
            # The demand lookups now hit the warmed caches.
            _mask, stats = directory.lookup_with_stats("client-0")
            assert stats.hot_hit
        finally:
            prefetcher.close()

    def test_close_is_idempotent_and_drops_new_notes(self):
        directory = ShardedEnrollmentDirectory(master_key=KEY, shards=2)
        prefetcher = DirectoryPrefetcher(directory)
        prefetcher.close()
        prefetcher.close()
        prefetcher.note("ignored")
        assert prefetcher.snapshot()["ids_noted"] == 0

    def test_prefetch_errors_never_escape(self):
        class Exploding:
            def prefetch(self, batch):
                raise RuntimeError("boom")

        prefetcher = DirectoryPrefetcher(Exploding())
        try:
            prefetcher.note("a")
            assert prefetcher.flush(timeout=5.0)
        finally:
            prefetcher.close()


class TestDegradedServing:
    """The CA server sheds typed when a key's replica set is dark."""

    @pytest.fixture(scope="class")
    def rig(self):
        from repro.core.protocol import ClientDevice
        from repro.net.concurrent import ConcurrentCAServer
        from repro.puf.model import SRAMPuf
        from repro.puf.ternary import enroll_with_masking
        from repro import quick_setup

        authority, _client, _mask = quick_setup(max_distance=1)
        directory = ShardedEnrollmentDirectory(
            master_key=KEY, shards=4, replication=2, cache_capacity=16
        )
        authority.image_db = directory
        fleet = {}
        for index in range(4):
            client_id = f"client-{index}"
            puf = SRAMPuf(num_cells=1024, stable_error=0.0, seed=400 + index)
            mask = enroll_with_masking(
                puf, 0, 1024, reads=8, instability_threshold=0.02
            )
            authority.enroll(client_id, mask)
            device = ClientDevice(
                client_id, puf, noise_target_distance=0,
                rng=np.random.default_rng(index),
            )
            fleet[client_id] = (
                device, authority.issue_challenge(client_id), mask
            )
        return authority, directory, fleet

    def test_shed_is_typed_and_served_keys_keep_working(self, rig):
        from repro.net.concurrent import ConcurrentCAServer
        from repro.sched.errors import (
            SHED_DIRECTORY_UNAVAILABLE,
            RequestShed,
        )

        authority, directory, fleet = rig
        victim = next(iter(fleet))
        with ConcurrentCAServer(authority, workers=2) as server:
            assert server.prefetcher is not None  # auto-wired
            for name in directory.replicas_for(victim):
                directory.kill_shard(name)
            directory.drop_hot_caches()
            futures = {}
            for client_id, (device, challenge, mask) in fleet.items():
                digest = device.respond(challenge, reference_mask=mask)
                futures[client_id] = server.submit(client_id, digest)
            with pytest.raises(RequestShed) as excinfo:
                futures[victim].result(timeout=60.0)
            assert excinfo.value.reason == SHED_DIRECTORY_UNAVAILABLE
            for client_id, future in futures.items():
                if client_id == victim:
                    continue
                alive_replicas = [
                    name
                    for name in directory.replicas_for(client_id)
                    if directory.shard(name).alive
                ]
                if alive_replicas:
                    assert future.result(timeout=60.0).authenticated
            metrics = server.metrics.snapshot()
        assert metrics["shed_directory"] >= 1
        assert metrics["shed"] >= 1

    def test_directory_stats_ride_on_search_result(self, rig):
        authority, directory, fleet = rig
        for name in directory.shard_names:
            directory.revive_shard(name)
        client_id, (device, challenge, mask) = next(iter(fleet.items()))
        # Let the breakers' recovery window pass for revived shards.
        time.sleep(0.08)
        digest = device.respond(challenge, reference_mask=mask)
        result = authority.run_search(client_id, digest)
        assert result.directory is not None
        assert result.directory.source in ("hot-cache", "primary", "replica")


class TestShardLossStorm:
    def test_reduced_storm_passes_and_reproduces(self):
        from repro.directory.storm import run_shard_loss_storm

        first = run_shard_loss_storm(seed=0, clients=12, workers=2)
        assert first.passed, first.render()
        assert first.false_authentications == 0
        assert first.shed_typed == len(first.doomed)
        assert first.shed_untyped == 0
        second = run_shard_loss_storm(seed=0, clients=12, workers=2)
        assert second.waves == first.waves
        assert second.doomed == first.doomed
        assert (second.victim, second.partner) == (
            first.victim, first.partner
        )

    def test_chaos_namespace_delegates(self):
        from repro.directory.storm import run_shard_loss_storm as direct
        from repro.reliability.chaos import run_shard_loss_storm as via_chaos

        assert via_chaos.__module__ == "repro.reliability.chaos"
        assert direct.__module__ == "repro.directory.storm"
        report = via_chaos(seed=1, clients=10, workers=2)
        assert report.passed, report.render()
