"""Core search service, protocol orchestration, CA/RA bookkeeping."""

import numpy as np
import pytest

from repro._bitutils import flip_bits
from repro.core.authentication import CertificateAuthority, RegistrationAuthority
from repro.core.original_rbc import OriginalRBCSearch
from repro.core.protocol import ClientDevice, RBCSaltedProtocol
from repro.core.search import DEFAULT_TIME_THRESHOLD, RBCSearchService
from repro.hashes.sha3 import sha3_256
from repro.keygen.interface import get_keygen
from repro.runtime.executor import BatchSearchExecutor


class TestSearchService:
    def test_finds_planted_seed(self, planted_pair):
        base, client_seed, distance = planted_pair
        service = RBCSearchService(BatchSearchExecutor("sha3-256"), max_distance=2)
        result = service.find_seed(base, sha3_256(client_seed))
        assert result.found and result.seed == client_seed

    def test_respects_time_threshold(self, planted_pair):
        base, client_seed, _ = planted_pair
        # A zero budget must time out immediately (d=2 space is nonempty).
        service = RBCSearchService(
            BatchSearchExecutor("sha3-256", batch_size=256),
            max_distance=2,
            time_threshold=0.0,
        )
        result = service.find_seed(base, sha3_256(flip_bits(base, [1, 2])))
        assert result.timed_out and not result.found

    def test_default_threshold_is_papers_T(self):
        assert DEFAULT_TIME_THRESHOLD == 20.0

    def test_plan_max_distance(self):
        service = RBCSearchService(BatchSearchExecutor("sha1"))
        assert service.plan_max_distance(8987138113 / 4.67) == 5


class TestRegistrationAuthority:
    def test_update_and_lookup(self):
        ra = RegistrationAuthority()
        ra.update("alice", b"key-1")
        assert ra.lookup("alice") == b"key-1"
        assert "alice" in ra and "bob" not in ra

    def test_one_time_key_rotation_counted(self):
        ra = RegistrationAuthority()
        ra.update("alice", b"key-1")
        ra.update("alice", b"key-2")
        assert ra.lookup("alice") == b"key-2"
        assert ra.update_count("alice") == 2

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            RegistrationAuthority().update("alice", b"")


class TestCertificateAuthority:
    def test_enrolled_seed_matches_mask(self, small_authority):
        authority, _client, mask = small_authority
        seed = authority.enrolled_seed("client-0")
        expected = np.packbits(mask.reference_seed_bits(256)).tobytes()
        assert seed == expected

    def test_challenge_carries_public_mask(self, small_authority):
        authority, _client, mask = small_authority
        challenge = authority.issue_challenge("client-0")
        assert (challenge.usable == mask.usable).all()
        assert challenge.bit_count == 256

    def test_unenrolled_client_rejected(self, small_authority):
        authority, _, _ = small_authority
        with pytest.raises(KeyError):
            authority.issue_challenge("nobody")

    def test_enrollment_requires_enough_cells(self, small_authority):
        authority, _, mask = small_authority
        import dataclasses

        starved = dataclasses.replace(mask, usable=mask.usable & False)
        with pytest.raises(ValueError):
            authority.enroll("tiny", starved)

    def test_issue_public_key_updates_ra(self, small_authority, rng):
        authority, _, _ = small_authority
        seed = rng.bytes(32)
        key = authority.issue_public_key("client-0", seed)
        assert authority.registration_authority.lookup("client-0") == key

    def test_public_key_is_salted(self, small_authority, rng):
        authority, _, _ = small_authority
        seed = rng.bytes(32)
        key = authority.issue_public_key("client-0", seed)
        raw_key = authority.keygen.public_key(seed)
        assert key != raw_key  # salt decouples key from searched seed


class TestProtocolRound:
    def test_successful_authentication(self, small_authority):
        authority, client, mask = small_authority
        outcome = RBCSaltedProtocol(authority).authenticate(client, reference_mask=mask)
        assert outcome.authenticated
        assert outcome.distance is not None and outcome.distance <= 2
        assert outcome.public_key is not None

    def test_outcome_truthiness(self, small_authority):
        authority, client, mask = small_authority
        outcome = RBCSaltedProtocol(authority).authenticate(client, reference_mask=mask)
        assert bool(outcome) is outcome.authenticated

    def test_failed_authentication_with_wrong_device(self, small_authority):
        from repro.puf.model import SRAMPuf

        authority, _, mask = small_authority
        imposter = ClientDevice(
            "client-0",  # claims the same identity...
            SRAMPuf(num_cells=2048, seed=999),  # ...with a different chip
            rng=np.random.default_rng(0),
        )
        outcome = RBCSaltedProtocol(authority, max_attempts=1).authenticate(imposter)
        assert not outcome.authenticated
        assert outcome.public_key is None

    def test_retry_counts_attempts(self, small_authority):
        from repro.puf.model import SRAMPuf

        authority, _, _ = small_authority
        imposter = ClientDevice(
            "client-0", SRAMPuf(num_cells=2048, seed=998),
            rng=np.random.default_rng(0),
        )
        outcome = RBCSaltedProtocol(authority, max_attempts=2).authenticate(imposter)
        assert outcome.attempts == 2

    def test_max_attempts_validation(self, small_authority):
        authority, _, _ = small_authority
        with pytest.raises(ValueError):
            RBCSaltedProtocol(authority, max_attempts=0)

    def test_noise_injection_sets_distance(self, small_authority):
        authority, client, mask = small_authority
        client.noise_target_distance = 2
        outcome = RBCSaltedProtocol(authority).authenticate(client, reference_mask=mask)
        assert outcome.authenticated and outcome.distance == 2


class TestOriginalRBC:
    def test_finds_seed_by_key_comparison(self, base_seed):
        keygen = get_keygen("speck-128")
        engine = OriginalRBCSearch(keygen)
        client_seed = flip_bits(base_seed, [40])
        result = engine.search(base_seed, keygen.public_key(client_seed), max_distance=1)
        assert result.found and result.seed == client_seed and result.distance == 1

    def test_distance_zero(self, base_seed):
        keygen = get_keygen("aes-128")
        engine = OriginalRBCSearch(keygen)
        result = engine.search(base_seed, keygen.public_key(base_seed), max_distance=1)
        assert result.found and result.distance == 0 and result.seeds_hashed == 1

    def test_not_found(self, base_seed, rng):
        keygen = get_keygen("speck-128")
        engine = OriginalRBCSearch(keygen)
        result = engine.search(base_seed, keygen.public_key(rng.bytes(32)), max_distance=1)
        assert not result.found

    def test_timeout(self, base_seed, rng):
        keygen = get_keygen("lightsaber")  # expensive on purpose
        engine = OriginalRBCSearch(keygen)
        result = engine.search(
            base_seed, keygen.public_key(rng.bytes(32)), max_distance=2,
            time_budget=0.3,
        )
        assert result.timed_out and not result.found

    def test_keygen_cost_asymmetry_vs_salted(self, base_seed):
        """RBC-SALTED's core claim: per-candidate hash << per-candidate keygen."""
        import time

        keygen = get_keygen("lightsaber")
        start = time.perf_counter()
        for _ in range(3):
            keygen.public_key(base_seed)
        keygen_seconds = (time.perf_counter() - start) / 3

        start = time.perf_counter()
        for _ in range(20):
            sha3_256(base_seed)
        hash_seconds = (time.perf_counter() - start) / 20
        assert keygen_seconds > 10 * hash_seconds
