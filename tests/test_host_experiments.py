"""Host-calibrated device model and the experiment index."""

import pathlib

import pytest

from repro.analysis.experiments import EXPERIMENTS, get_experiment, render_index
from repro.devices.host import HostDeviceModel

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def host():
    return HostDeviceModel(
        hash_names=("sha1", "sha3-256"), probe_seeds=8000, batch_size=8192
    )


class TestHostModel:
    def test_probed_throughputs_positive(self, host):
        rates = host.throughput
        assert rates["sha1"] > 0 and rates["sha3-256"] > 0

    def test_sha1_faster_than_sha3(self, host):
        assert host.throughput["sha1"] > host.throughput["sha3-256"]

    def test_search_time_scales_with_space(self, host):
        assert host.search_time("sha1", 3) > 50 * host.search_time("sha1", 2)

    def test_average_mode_cheaper(self, host):
        assert host.search_time("sha1", 2, "average") < host.search_time("sha1", 2)

    def test_unprobed_hash_rejected(self, host):
        with pytest.raises(KeyError):
            host.search_time("sha256", 2)

    def test_tractable_distance_reasonable(self, host):
        # A laptop-scale host should handle at least d=2 but not d=6.
        d = host.tractable_distance("sha1")
        assert 2 <= d <= 5

    def test_prediction_matches_reality(self, host):
        predicted, measured = host.verify_prediction("sha1", distance=2)
        assert predicted > 0 and measured > 0

    def test_simulate_search_record(self, host):
        timing = host.simulate_search("sha1", 2)
        assert timing.seeds_searched == 32897
        assert timing.device == "Host"


class TestExperimentIndex:
    def test_every_bench_file_exists(self):
        for experiment in EXPERIMENTS:
            assert (REPO_ROOT / experiment.bench).is_file(), experiment.experiment_id

    def test_every_module_imports(self):
        import importlib

        for experiment in EXPERIMENTS:
            for module in experiment.modules:
                importlib.import_module(module)

    def test_paper_artifacts_covered(self):
        artifacts = {e.paper_artifact for e in EXPERIMENTS if not e.extension}
        for expected in ("Table 1", "Table 4", "Table 5", "Table 6", "Table 7",
                         "Figure 3", "Figure 4"):
            assert expected in artifacts

    def test_lookup(self):
        assert get_experiment("t5").paper_artifact == "Table 5"
        with pytest.raises(KeyError):
            get_experiment("T99")

    def test_ids_unique(self):
        ids = [e.experiment_id for e in EXPERIMENTS]
        assert len(ids) == len(set(ids))

    def test_render_index_contains_all(self):
        text = render_index()
        for experiment in EXPERIMENTS:
            assert experiment.experiment_id in text

    def test_cli_experiments_command(self, capsys):
        from repro.cli import main

        assert main(["experiments"]) == 0
        assert "Table 5" in capsys.readouterr().out

    def test_cli_report_roundtrip(self, tmp_path, capsys):
        from repro.cli import main

        results = tmp_path / "results"
        results.mkdir()
        (results / "sample.txt").write_text("hello table")
        output = tmp_path / "OUT.md"
        code = main([
            "report", "--results-dir", str(results), "--output", str(output)
        ])
        assert code == 0
        assert "hello table" in output.read_text()

    def test_cli_report_missing_dir(self, tmp_path):
        from repro.cli import main

        assert main([
            "report", "--results-dir", str(tmp_path / "nope"),
            "--output", str(tmp_path / "o.md"),
        ]) == 1
