"""Batch original-RBC engine and the distributed cluster executor."""

import numpy as np
import pytest

from repro._bitutils import flip_bits
from repro.hashes.sha1 import sha1
from repro.keygen.interface import get_keygen
from repro.runtime.cluster import ClusterSearchExecutor, Interconnect
from repro.runtime.original_batch import BATCH_KEYGEN_CHOICES, BatchOriginalRBCSearch


class TestBatchOriginalRBC:
    @pytest.mark.parametrize("name", BATCH_KEYGEN_CHOICES)
    def test_finds_planted_seed(self, base_seed, name):
        gen = get_keygen(name)
        client = flip_bits(base_seed, [3, 250])
        engine = BatchOriginalRBCSearch(name, batch_size=4096)
        result = engine.search(base_seed, gen.public_key(client), 2)
        assert result.found and result.seed == client and result.distance == 2

    @pytest.mark.parametrize("name", BATCH_KEYGEN_CHOICES)
    def test_distance_zero(self, base_seed, name):
        gen = get_keygen(name)
        engine = BatchOriginalRBCSearch(name)
        result = engine.search(base_seed, gen.public_key(base_seed), 1)
        assert result.found and result.distance == 0 and result.seeds_hashed == 1

    def test_not_found(self, base_seed, rng):
        gen = get_keygen("speck-128")
        engine = BatchOriginalRBCSearch("speck-128", batch_size=2048)
        result = engine.search(base_seed, gen.public_key(rng.bytes(32)), 1)
        assert not result.found
        assert result.seeds_hashed == 1 + 256

    def test_batch_matches_scalar_registry(self, rng):
        """The batch response kernel must equal the scalar KeyGenerator."""
        from repro._bitutils import seed_to_words

        for name in BATCH_KEYGEN_CHOICES:
            gen = get_keygen(name)
            engine = BatchOriginalRBCSearch(name)
            seed = rng.bytes(32)
            batch = engine.response_batch(seed_to_words(seed)[None, :])
            scalar = gen.public_key(seed)
            assert batch[0].tobytes() == scalar[: batch.shape[1]], name

    def test_timeout(self, base_seed, rng):
        engine = BatchOriginalRBCSearch("aes-128", batch_size=256)
        gen = get_keygen("aes-128")
        result = engine.search(
            base_seed, gen.public_key(rng.bytes(32)), 2, time_budget=0.0
        )
        assert result.timed_out

    def test_response_length_validation(self, base_seed):
        engine = BatchOriginalRBCSearch("aes-128")
        with pytest.raises(ValueError):
            engine.search(base_seed, b"\x00" * 5, 1)

    def test_unknown_keygen_rejected(self):
        with pytest.raises(ValueError):
            BatchOriginalRBCSearch("dilithium3")  # scalar-only by design

    def test_throughput_probe(self):
        assert BatchOriginalRBCSearch("speck-128").throughput_probe(2000) > 0


class TestClusterExecutor:
    def test_finds_planted_seed(self, base_seed):
        client = flip_bits(base_seed, [100, 101])
        cluster = ClusterSearchExecutor(3, "sha1", batch_size=2048)
        result = cluster.search(base_seed, sha1(client), 2)
        assert result.found and result.seed == client and result.distance == 2
        assert result.finder_rank is not None

    def test_distance_zero_found_by_rank_zero(self, base_seed):
        cluster = ClusterSearchExecutor(3, "sha1", batch_size=2048)
        result = cluster.search(base_seed, sha1(base_seed), 1)
        assert result.found and result.distance == 0 and result.finder_rank == 0

    def test_exhaustion_covers_whole_space(self, base_seed, rng):
        cluster = ClusterSearchExecutor(4, "sha1", batch_size=1024)
        result = cluster.search(base_seed, sha1(rng.bytes(32)), 1)
        assert not result.found
        # Every rank also hashes S_init (the d=0 probe), so the joint
        # count is the shell plus one probe per rank.
        assert result.seeds_hashed_total == 256 + 4

    def test_ranks_partition_disjointly(self, base_seed):
        # Plant at a known lexicographic rank and verify exactly one
        # rank finds it regardless of cluster size.
        client = flip_bits(base_seed, [255])  # last d=1 candidate
        digest = sha1(client)
        for ranks in (1, 2, 5):
            cluster = ClusterSearchExecutor(ranks, "sha1", batch_size=512)
            result = cluster.search(base_seed, digest, 1)
            assert result.found
            assert result.finder_rank == ranks - 1  # owner of the tail slice

    def test_wall_time_accounting(self, base_seed, rng):
        quiet = Interconnect(
            name="zero", broadcast_seconds=0, allreduce_seconds=0,
            gather_seconds=0, exit_propagation_seconds=0,
        )
        slow = Interconnect(
            name="slow", broadcast_seconds=1.0, allreduce_seconds=1.0,
            gather_seconds=1.0, exit_propagation_seconds=0,
        )
        digest = sha1(rng.bytes(32))
        fast_result = ClusterSearchExecutor(2, "sha1", 1024, quiet).search(
            base_seed, digest, 1
        )
        slow_result = ClusterSearchExecutor(2, "sha1", 1024, slow).search(
            base_seed, digest, 1
        )
        assert slow_result.wall_seconds > fast_result.wall_seconds + 2.9

    def test_single_rank_has_no_fabric_cost(self, base_seed, rng):
        cluster = ClusterSearchExecutor(1, "sha1", 1024)
        result = cluster.search(base_seed, sha1(rng.bytes(32)), 1)
        assert result.wall_seconds == pytest.approx(
            max(result.per_rank_seconds), rel=0.01
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterSearchExecutor(0)

    def test_result_truthiness(self, base_seed):
        cluster = ClusterSearchExecutor(2, "sha1", 1024)
        found = cluster.search(base_seed, sha1(base_seed), 1)
        assert bool(found) is True
