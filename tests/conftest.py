"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro._bitutils import flip_bits


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture
def base_seed(rng) -> bytes:
    return rng.bytes(32)


@pytest.fixture
def planted_pair(base_seed, rng):
    """(base_seed, client_seed, distance) with the client seed planted at
    a known Hamming distance 2."""
    positions = sorted(rng.choice(256, size=2, replace=False).tolist())
    return base_seed, flip_bits(base_seed, positions), 2


@pytest.fixture
def small_authority():
    """A fully enrolled CA + client at interactive scale (d <= 2)."""
    from repro import quick_setup

    authority, client, mask = quick_setup(seed=11)
    return authority, client, mask
