"""SHA-512 family and HMAC (RFC 2104 / stdlib cross-validation)."""

import hashlib
import hmac as stdlib_hmac

import pytest

from repro.hashes.hmac import hmac_digest, hmac_verify
from repro.hashes.sha512 import SHA512, sha384, sha512


class TestSHA512Family:
    @pytest.mark.parametrize("length", [0, 1, 111, 112, 127, 128, 129, 240, 300])
    def test_sha512_matches_hashlib(self, rng, length):
        data = rng.bytes(length)
        assert sha512(data) == hashlib.sha512(data).digest()

    @pytest.mark.parametrize("length", [0, 1, 111, 112, 128, 200])
    def test_sha384_matches_hashlib(self, rng, length):
        data = rng.bytes(length)
        assert sha384(data) == hashlib.sha384(data).digest()

    def test_incremental_updates(self, rng):
        data = rng.bytes(500)
        h = SHA512()
        for off in range(0, 500, 13):
            h.update(data[off : off + 13])
        assert h.digest() == hashlib.sha512(data).digest()

    def test_digest_repeatable_and_continuable(self):
        h = SHA512(b"abc")
        first = h.digest()
        assert h.digest() == first
        h.update(b"def")
        assert h.digest() == hashlib.sha512(b"abcdef").digest()

    def test_copy_forks(self):
        h = SHA512(b"base")
        fork = h.copy()
        fork.update(b"-x")
        assert h.digest() == hashlib.sha512(b"base").digest()
        assert fork.digest() == hashlib.sha512(b"base-x").digest()

    def test_variant_validation(self):
        with pytest.raises(ValueError):
            SHA512(variant=224)

    def test_digest_sizes(self):
        assert len(sha512(b"")) == 64
        assert len(sha384(b"")) == 48

    def test_128_byte_length_field(self, rng):
        # The 16-byte (128-bit) length encoding path, > 2^32 bits not
        # feasible; check the boundary where padding spills a block.
        data = rng.bytes(119)  # 119 + 1 + pad + 16 = 2 blocks
        assert sha512(data) == hashlib.sha512(data).digest()


class TestHMAC:
    REFS = {
        "sha1": hashlib.sha1,
        "sha256": hashlib.sha256,
        "sha512": hashlib.sha512,
        "sha3-256": hashlib.sha3_256,
    }

    @pytest.mark.parametrize("name", sorted(REFS))
    @pytest.mark.parametrize("key_len", [1, 20, 64, 65, 136, 137, 200])
    def test_matches_stdlib(self, rng, name, key_len):
        key, msg = rng.bytes(key_len), rng.bytes(83)
        expected = stdlib_hmac.new(key, msg, self.REFS[name]).digest()
        assert hmac_digest(key, msg, name) == expected

    def test_rfc4231_case_1(self):
        # RFC 4231 test case 1 (HMAC-SHA-256).
        key = b"\x0b" * 20
        data = b"Hi There"
        expected = bytes.fromhex(
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        )
        assert hmac_digest(key, data, "sha256") == expected

    def test_verify_accepts_good_tag(self, rng):
        key, msg = rng.bytes(32), rng.bytes(50)
        tag = hmac_digest(key, msg)
        assert hmac_verify(key, msg, tag)

    def test_verify_rejects_bad_tag(self, rng):
        key, msg = rng.bytes(32), rng.bytes(50)
        tag = bytearray(hmac_digest(key, msg))
        tag[0] ^= 1
        assert not hmac_verify(key, msg, bytes(tag))

    def test_verify_rejects_wrong_length(self, rng):
        key, msg = rng.bytes(32), rng.bytes(50)
        assert not hmac_verify(key, msg, b"\x01\x02")

    def test_verify_rejects_wrong_message(self, rng):
        key = rng.bytes(32)
        tag = hmac_digest(key, b"message-a")
        assert not hmac_verify(key, b"message-b", tag)

    def test_unknown_hash(self):
        with pytest.raises(KeyError):
            hmac_digest(b"k", b"m", "md5")
