"""Failure-injection tests: the system must fail loudly and safely.

Corrupted storage, mismatched configurations, malformed wire data,
exhausted search budgets — each should produce a clean rejection or a
specific exception, never a silent mis-authentication.
"""

import dataclasses

import numpy as np
import pytest

from repro import quick_setup
from repro.core import RBCSaltedProtocol
from repro.core.protocol import ClientDevice
from repro.net import CAServer, InProcessTransport, NetworkClient
from repro.net.messages import DigestSubmission
from repro.puf.model import SRAMPuf


class TestCorruptedStorage:
    def test_corrupted_image_db_record_fails_loudly(self, small_authority):
        authority, _client, _mask = small_authority
        record = authority.image_db._records["client-0"]
        corrupted = bytes([record[0] ^ 0xFF]) + record[1:]
        authority.image_db._records["client-0"] = corrupted
        with pytest.raises(Exception):
            authority.image_db.lookup("client-0")

    def test_truncated_record_fails(self, small_authority):
        authority, _client, _mask = small_authority
        authority.image_db._records["client-0"] = authority.image_db._records[
            "client-0"
        ][:10]
        with pytest.raises(Exception):
            authority.issue_challenge("client-0")


class TestWireCorruption:
    def test_corrupted_digest_never_authenticates(self, small_authority):
        authority, client, mask = small_authority
        challenge = authority.issue_challenge("client-0")
        digest = client.respond(challenge, reference_mask=mask)
        corrupted = bytes([digest[0] ^ 0x01]) + digest[1:]
        result = authority.run_search("client-0", corrupted)
        assert not result.found

    def test_wrong_length_digest_rejected(self, small_authority):
        authority, _client, _mask = small_authority
        with pytest.raises(ValueError):
            authority.run_search("client-0", b"\x00" * 7)

    def test_digest_submission_with_empty_digest(self, small_authority):
        authority, _client, _mask = small_authority
        server = CAServer(authority)
        with pytest.raises(ValueError):
            server.handle_digest(DigestSubmission("client-0", b""))


class TestConfigurationMismatch:
    def test_client_hashing_with_wrong_algorithm_fails_auth(self, small_authority):
        """A client that hashes with SHA-1 while the CA searches SHA-3
        digests must simply fail (and the length check catches it)."""
        authority, client, mask = small_authority
        challenge = authority.issue_challenge("client-0")
        wrong = dataclasses.replace(challenge, hash_name="sha1")
        digest = client.respond(wrong, reference_mask=mask)
        # SHA-1 digests are 20 bytes; the SHA-3 search needs 32.
        with pytest.raises(ValueError):
            authority.run_search("client-0", digest)

    def test_sha512_digest_against_sha3_search_rejected(self, small_authority):
        authority, client, mask = small_authority
        challenge = authority.issue_challenge("client-0")
        wrong = dataclasses.replace(challenge, hash_name="sha512")
        digest = client.respond(wrong, reference_mask=mask)
        with pytest.raises(ValueError):
            authority.run_search("client-0", digest)

    def test_challenge_window_too_small(self, small_authority):
        authority, _client, mask = small_authority
        challenge = authority.issue_challenge("client-0")
        starved = dataclasses.replace(
            challenge, usable=challenge.usable & False
        )
        device = ClientDevice(
            "client-0", SRAMPuf(num_cells=2048, seed=0),
            rng=np.random.default_rng(0),
        )
        with pytest.raises(ValueError):
            device.respond(starved)


class TestBudgetExhaustion:
    def test_timeout_reported_not_swallowed(self, small_authority):
        authority, client, mask = small_authority
        authority.search_service.time_threshold = 0.0
        client.noise_target_distance = 2  # force a non-trivial search
        outcome = RBCSaltedProtocol(authority, max_attempts=2).authenticate(
            client, reference_mask=mask
        )
        assert not outcome.authenticated
        assert outcome.timed_out
        assert outcome.attempts == 2

    def test_network_flow_survives_timeout(self, small_authority):
        authority, client, mask = small_authority
        authority.search_service.time_threshold = 0.0
        client.noise_target_distance = 2
        transport = InProcessTransport()
        result = NetworkClient(
            client, transport, reference_mask=mask, max_attempts=2
        ).authenticate(CAServer(authority))
        assert not result.authenticated and result.timed_out


class TestImposterResistance:
    @pytest.mark.parametrize("imposter_seed", [1000, 2000, 3000])
    def test_random_devices_never_authenticate(self, small_authority, imposter_seed):
        authority, _client, _mask = small_authority
        imposter = ClientDevice(
            "client-0",
            SRAMPuf(num_cells=2048, seed=imposter_seed),
            rng=np.random.default_rng(imposter_seed),
        )
        outcome = RBCSaltedProtocol(authority, max_attempts=1).authenticate(imposter)
        assert not outcome.authenticated

    def test_guessing_digests_never_authenticates(self, small_authority, rng):
        from repro.hashes.sha3 import sha3_256

        authority, _client, _mask = small_authority
        for _ in range(3):
            fake_digest = sha3_256(rng.bytes(32))
            result = authority.run_search("client-0", fake_digest)
            assert not result.found
